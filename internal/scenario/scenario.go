// Package scenario defines the pluggable testbed contract of the detection
// framework. The paper evaluates on the Mississippi State gas pipeline
// testbed, but the two-level detector itself is process-agnostic: it sees
// only the Table I package schema. A Scenario bundles everything that IS
// process-specific — the plant dynamics and controller, the Modbus register
// layout of the controller block, the attack-episode injectors for the seven
// Table II categories, and the labeled dataset generator — behind one
// interface, so the tap, the trace codec, the replayer, the engine and the
// command-line tools can serve any registered testbed.
//
// Implementations live in their own packages (internal/gaspipeline,
// internal/watertank) and register themselves in this package's registry at
// init time; resolve one by name with Get. Adding a third testbed means
// implementing Scenario and Sim and calling Register — nothing else in the
// pipeline changes (see the README's "Scenarios" section).
package scenario

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/signature"
	"icsdetect/internal/tap"
)

// Frame is one wire frame as observed by a recording tap on a simulated
// link: the raw Modbus RTU bytes plus the side information a trace recorder
// needs (direction, ground truth, whether the frame arrived corrupted, and
// the simulation timestamp).
type Frame struct {
	// Raw is the encoded RTU frame. Its CRC is valid unless the frame was
	// deliberately tampered with (CorruptCRC attacks); benign link glitches
	// are reported via Corrupt instead, because simulators model them after
	// encoding.
	Raw []byte
	// IsCmd marks master→slave traffic.
	IsCmd bool
	// Corrupt reports whether the monitor saw the frame's CRC fail (attack
	// tampering or benign link glitch).
	Corrupt bool
	// Label is the ground-truth attack type of the frame.
	Label dataset.AttackType
	// Time is the simulation clock at emission, seconds.
	Time float64
}

// Sim is a running testbed simulation: a traffic source the trace recorder,
// the corpus builder and the dataset generator drive cycle by cycle. A Sim
// is single-goroutine and owns its plant, controller and RNG; all
// randomness derives from the seed it was created with.
type Sim interface {
	// RunNormalCycle performs one legitimate poll cycle, labeling its
	// packages with label (Normal for legitimate traffic; attack decay
	// tails reuse it with an attack label).
	RunNormalCycle(label dataset.AttackType)
	// RunAttackEpisode plays one episode of the given Table II category
	// against the live simulation; n scales the episode length in the
	// category's natural unit (cycles for injections, probes for Recon).
	// Unsupported categories return an error.
	RunAttackEpisode(at dataset.AttackType, n int) error
	// SetFrameSink installs fn to observe every emitted wire frame in
	// emission order; nil detaches. The Raw slice must not be retained or
	// mutated across calls.
	SetFrameSink(fn func(Frame))
	// Packages returns the packages emitted so far (not a copy; the caller
	// driving the simulation owns it).
	Packages() []*dataset.Package
	// Now returns the simulation clock in seconds.
	Now() float64
}

// EpisodeRunner is the injector surface both built-in simulators expose:
// one Run*Episode method per Table II category. DispatchEpisode maps a
// category onto it, so each Sim's RunAttackEpisode is a one-line delegate
// instead of a per-testbed copy of the dispatch switch.
type EpisodeRunner interface {
	RunNMRIEpisode(cycles int)
	RunCMRIEpisode(cycles int)
	RunMSCIEpisode(cycles int)
	RunMPCIEpisode(cycles int)
	RunMFCIEpisode(count int)
	RunDoSEpisode(cycles int)
	RunReconEpisode(probes int)
}

// DispatchEpisode plays one episode of the given Table II category on r;
// unknown categories return an error.
func DispatchEpisode(r EpisodeRunner, at dataset.AttackType, n int) error {
	switch at {
	case dataset.NMRI:
		r.RunNMRIEpisode(n)
	case dataset.CMRI:
		r.RunCMRIEpisode(n)
	case dataset.MSCI:
		r.RunMSCIEpisode(n)
	case dataset.MPCI:
		r.RunMPCIEpisode(n)
	case dataset.MFCI:
		r.RunMFCIEpisode(n)
	case dataset.DOS:
		r.RunDoSEpisode(n)
	case dataset.Recon:
		r.RunReconEpisode(n)
	default:
		return fmt.Errorf("scenario: unsupported attack type %v", at)
	}
	return nil
}

// GenConfig parameterizes a scenario's labeled dataset generator. The zero
// value of AttackTypes means all seven Table II categories.
type GenConfig struct {
	// TotalPackages is the approximate dataset size (generation stops at
	// the first episode boundary past this count).
	TotalPackages int
	// AttackRatio is the target fraction of attack-labeled packages
	// (original dataset: ≈ 0.219). Zero generates attack-free traffic.
	AttackRatio float64
	// AttackTypes restricts which attacks are injected (default: all 7).
	AttackTypes []dataset.AttackType
	// Seed drives all randomness.
	Seed uint64
}

// Scenario is one complete testbed: a named physical process with its
// controller, Modbus register layout, attack injectors and dataset
// generator. Implementations must be stateless values — all simulation
// state lives in the Sims they create.
type Scenario interface {
	// Name is the registry key ("gaspipeline", "watertank").
	Name() string
	// Registers describes how the testbed's field device lays out its
	// controller block in holding registers — the frame→schema decode rule
	// the tap and the trace decoder apply to this scenario's traffic.
	Registers() tap.RegisterMap
	// NewSim creates a fresh simulation seeded with seed.
	NewSim(seed uint64) (Sim, error)
	// Generate runs the simulation and returns a labeled dataset with the
	// Table I schema, interleaving attack episodes with normal operation.
	Generate(cfg GenConfig) (*dataset.Dataset, error)
	// Granularity returns the signature discretization suited to a capture
	// of n packages (the scale heuristic icstrain applies when the paper's
	// granularity search is not run).
	Granularity(n int) signature.Granularity
}
