package scenario_test

import (
	"slices"
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/scenario"
	"icsdetect/internal/watertank"
)

// The two built-in testbeds register themselves at import; the registry is
// the single place scenario names resolve.
func TestRegistryResolvesBuiltins(t *testing.T) {
	names := scenario.Names()
	for _, want := range []string{"gaspipeline", "watertank"} {
		if !slices.Contains(names, want) {
			t.Fatalf("registry %v missing %q", names, want)
		}
	}

	def, err := scenario.Get("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != scenario.Default {
		t.Errorf("empty name resolved to %q, want default %q", def.Name(), scenario.Default)
	}

	wt, err := scenario.Get("watertank")
	if err != nil {
		t.Fatal(err)
	}
	if wt.Name() != "watertank" {
		t.Errorf("watertank resolved to %q", wt.Name())
	}

	if _, err := scenario.Get("steamturbine"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

// TestScenarioContracts exercises the interface surface every registered
// testbed must honor: sims are reproducible per seed, frame sinks observe
// the traffic, and all seven Table II categories inject.
func TestScenarioContracts(t *testing.T) {
	for _, sc := range []scenario.Scenario{gaspipeline.Scenario(), watertank.Scenario()} {
		t.Run(sc.Name(), func(t *testing.T) {
			regs := sc.Registers()
			if regs.MinRegisters <= 0 {
				t.Errorf("register map has no minimum payload: %+v", regs)
			}
			if g := sc.Granularity(1000); g.Validate() != nil {
				t.Errorf("small-capture granularity invalid: %+v", g)
			}
			if g := sc.Granularity(200000); g.Validate() != nil {
				t.Errorf("paper-scale granularity invalid: %+v", g)
			}

			sim, err := sc.NewSim(5)
			if err != nil {
				t.Fatal(err)
			}
			frames := 0
			sim.SetFrameSink(func(f scenario.Frame) {
				if len(f.Raw) == 0 {
					t.Error("sink observed an empty frame")
				}
				frames++
			})
			for i := 0; i < 10; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
			for _, at := range dataset.AttackTypes {
				if err := sim.RunAttackEpisode(at, 2); err != nil {
					t.Fatalf("attack %v: %v", at, err)
				}
			}
			sim.SetFrameSink(nil)
			if frames != len(sim.Packages()) {
				t.Errorf("sink saw %d frames, sim emitted %d packages", frames, len(sim.Packages()))
			}
			if sim.Now() <= 0 {
				t.Error("clock never advanced")
			}

			// Same seed, same traffic: the trace corpus depends on it.
			replay, err := sc.NewSim(5)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				replay.RunNormalCycle(dataset.Normal)
			}
			a, b := sim.Packages(), replay.Packages()
			for i := range b {
				if *a[i] != *b[i] {
					t.Fatalf("package %d differs across same-seed sims:\n%+v\n%+v", i, a[i], b[i])
				}
			}
		})
	}
}
