package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// Default is the name of the scenario tools assume when none is given: the
// paper's primary testbed.
const Default = "gaspipeline"

var (
	regMu    sync.RWMutex
	registry = make(map[string]Scenario)
)

// Register adds a scenario to the registry. Implementations call it from
// their package init, so importing a scenario package (directly or through
// the root icsdetect package) makes it resolvable by name. Registering an
// empty name or the same name twice panics: both are wiring bugs worth
// failing loudly on at startup.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", name))
	}
	registry[name] = s
}

// Get resolves a scenario by name. An empty name resolves to Default.
func Get(name string) (Scenario, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, namesLocked())
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
