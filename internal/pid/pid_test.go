package pid

import (
	"math"
	"testing"
)

// simplePlant is a first-order lag the tests drive the controller against.
type simplePlant struct {
	value float64
}

func (p *simplePlant) step(input, dt float64) {
	// dv/dt = 2*input - 0.3*v : settles at v = 6.67*input
	p.value += dt * (2*input - 0.3*p.value)
}

func TestPIConvergesToSetpoint(t *testing.T) {
	c, err := New(Config{Gain: 0.5, ResetRate: 0.4, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	plant := &simplePlant{}
	const setpoint = 3.0
	for i := 0; i < 2000; i++ {
		u := c.Step(setpoint, plant.value)
		plant.step(u, 0.1)
	}
	if math.Abs(plant.value-setpoint) > 0.05 {
		t.Errorf("PI loop settled at %v, want %v", plant.value, setpoint)
	}
}

func TestOutputBounded(t *testing.T) {
	c, err := New(Config{Gain: 100, ResetRate: 10, Rate: 1, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		u := c.Step(1000, 0) // enormous error
		if u < 0 || u > 1 {
			t.Fatalf("output %v outside [0,1]", u)
		}
	}
	for i := 0; i < 100; i++ {
		u := c.Step(-1000, 0)
		if u < 0 || u > 1 {
			t.Fatalf("output %v outside [0,1]", u)
		}
	}
}

// TestAntiWindup: after a long saturation period the integral must not have
// accumulated so much that the controller overshoots wildly when the error
// flips.
func TestAntiWindup(t *testing.T) {
	c, err := New(Config{Gain: 1, ResetRate: 1, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate high for a long time.
	for i := 0; i < 1000; i++ {
		c.Step(10, 0)
	}
	// Error flips: output should respond within a few steps, not after
	// unwinding 1000 steps of integral.
	steps := 0
	for ; steps < 50; steps++ {
		if u := c.Step(0, 10); u == 0 {
			break
		}
	}
	if steps >= 50 {
		t.Errorf("controller stuck saturated for %d steps after error flip", steps)
	}
}

func TestDeadbandHoldsOutput(t *testing.T) {
	c, err := New(Config{Gain: 1, ResetRate: 0.1, Deadband: 0.5, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	u1 := c.Step(5, 1) // big error: output moves
	u2 := c.Step(5, 4.8)
	if u2 != u1 {
		t.Errorf("output changed inside dead band: %v -> %v", u1, u2)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Gain: -1, CycleTime: 1},
		{Gain: 1, ResetRate: -1, CycleTime: 1},
		{Gain: 1, Rate: -1, CycleTime: 1},
		{Gain: 1, CycleTime: 0},
		{Gain: 1, CycleTime: 1, OutMin: 2, OutMax: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSetConfigPreservesState(t *testing.T) {
	c, err := New(Config{Gain: 1, ResetRate: 0.5, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Step(5, 0)
	}
	if err := c.SetConfig(Config{Gain: 2, ResetRate: 0.5, CycleTime: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Config().Gain; got != 2 {
		t.Errorf("gain = %v after SetConfig", got)
	}
	if err := c.SetConfig(Config{Gain: 1, CycleTime: 0}); err == nil {
		t.Error("invalid SetConfig accepted")
	}
}

func TestReset(t *testing.T) {
	c, err := New(Config{Gain: 1, ResetRate: 1, CycleTime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Step(5, 0)
	}
	c.Reset()
	// After reset the first step equals a fresh controller's first step.
	fresh, _ := New(Config{Gain: 1, ResetRate: 1, CycleTime: 0.1})
	if a, b := c.Step(5, 0), fresh.Step(5, 0); a != b {
		t.Errorf("reset state differs from fresh: %v vs %v", a, b)
	}
}

func TestDerivativeNoKickOnFirstStep(t *testing.T) {
	// With derivative action, the first step must not see a derivative
	// spike from an undefined previous error.
	withD, _ := New(Config{Gain: 1, Rate: 10, CycleTime: 0.01})
	withoutD, _ := New(Config{Gain: 1, CycleTime: 0.01})
	if a, b := withD.Step(1, 0), withoutD.Step(1, 0); a != b {
		t.Errorf("derivative kick on first step: %v vs %v", a, b)
	}
}
