// Package pid implements the proportional-integral-derivative controller the
// gas pipeline plant uses to maintain air pressure (paper §VII). The
// parameterization mirrors the dataset's PID columns: gain, reset rate,
// rate (derivative time), dead band and cycle time.
//
// The controller uses the standard (dependent) form
//
//	u(t) = Kp * ( e(t) + (1/Ti) ∫e dt + Td de/dt )
//
// where the dataset's "reset_rate" is repeats-per-time (1/Ti) and "rate" is
// the derivative time Td. Output is clamped to [OutMin, OutMax] with
// integral anti-windup (clamping form), and a dead band suppresses control
// action for small errors, as in the testbed's pressure loop.
package pid

import (
	"fmt"
	"math"
)

// Config holds the tunable controller parameters, named after the dataset
// columns they correspond to.
type Config struct {
	Gain      float64 // Kp (dataset "gain")
	ResetRate float64 // integral repeats per second, 1/Ti (dataset "reset_rate")
	Rate      float64 // derivative time Td in seconds (dataset "rate")
	Deadband  float64 // |error| below which output holds (dataset "deadband")
	CycleTime float64 // control period in seconds (dataset "cycle_time")

	OutMin, OutMax float64 // actuator limits; default [0, 1]
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Gain < 0 {
		return fmt.Errorf("pid: negative gain %g", c.Gain)
	}
	if c.ResetRate < 0 || c.Rate < 0 {
		return fmt.Errorf("pid: negative reset rate or rate (%g, %g)", c.ResetRate, c.Rate)
	}
	if c.CycleTime <= 0 {
		return fmt.Errorf("pid: cycle time must be positive, got %g", c.CycleTime)
	}
	if c.OutMin >= c.OutMax && !(c.OutMin == 0 && c.OutMax == 0) {
		return fmt.Errorf("pid: OutMin %g >= OutMax %g", c.OutMin, c.OutMax)
	}
	return nil
}

// Controller is a discrete PID controller. Not safe for concurrent use.
type Controller struct {
	cfg      Config
	integral float64
	prevErr  float64
	prevOut  float64
	primed   bool // prevErr valid (skip derivative kick on first step)
}

// New constructs a controller. Zero OutMin/OutMax default to [0, 1].
func New(cfg Config) (*Controller, error) {
	if cfg.OutMin == 0 && cfg.OutMax == 0 {
		cfg.OutMax = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the active configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetConfig replaces the controller parameters at runtime (the attack
// injector uses this to model MPCI parameter tampering). State is preserved.
func (c *Controller) SetConfig(cfg Config) error {
	if cfg.OutMin == 0 && cfg.OutMax == 0 {
		cfg.OutMax = 1
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	c.cfg = cfg
	return nil
}

// Reset clears accumulated state.
func (c *Controller) Reset() {
	c.integral, c.prevErr, c.prevOut, c.primed = 0, 0, 0, false
}

// Step advances the controller by one cycle with the given setpoint and
// process value, returning the actuator command in [OutMin, OutMax].
func (c *Controller) Step(setpoint, process float64) float64 {
	e := setpoint - process
	if math.Abs(e) < c.cfg.Deadband {
		// Inside the dead band the controller holds its previous output,
		// matching the plant's relay-style behaviour around the setpoint.
		return c.prevOut
	}
	dt := c.cfg.CycleTime
	p := c.cfg.Gain * e

	// Integral with anti-windup: only integrate when output is not
	// saturated in the direction of the error.
	i := c.cfg.Gain * c.cfg.ResetRate * c.integral

	var d float64
	if c.primed && c.cfg.Rate > 0 {
		d = c.cfg.Gain * c.cfg.Rate * (e - c.prevErr) / dt
	}

	raw := p + i + d
	out := mathClamp(raw, c.cfg.OutMin, c.cfg.OutMax)

	saturatedHigh := raw > c.cfg.OutMax && e > 0
	saturatedLow := raw < c.cfg.OutMin && e < 0
	if !saturatedHigh && !saturatedLow {
		c.integral += e * dt
	}

	c.prevErr = e
	c.prevOut = out
	c.primed = true
	return out
}

func mathClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
