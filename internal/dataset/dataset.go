// Package dataset defines the gas-pipeline traffic record schema (paper
// §VII, Table I), the attack taxonomy (Table II), and the chronological
// 6:2:2 train/validation/test split with anomaly removal and short-fragment
// filtering used by the experiments (paper §VIII).
package dataset

import (
	"fmt"
	"io"
	"sort"

	"icsdetect/internal/arff"
)

// AttackType identifies the ground-truth class of a package (Table II).
// Normal is 0 so that a zero-valued record is a normal package.
type AttackType int

// Attack categories from Table II of the paper.
const (
	Normal AttackType = iota
	NMRI              // 1: naive malicious response injection
	CMRI              // 2: complex malicious response injection (hide real state)
	MSCI              // 3: malicious state command injection
	MPCI              // 4: malicious parameter command injection
	MFCI              // 5: malicious function code injection
	DOS               // 6: denial of service on the communication link
	Recon             // 7: reconnaissance (pretend to read from devices)
)

// AttackTypes lists all non-normal attack classes in Table II order.
var AttackTypes = []AttackType{NMRI, CMRI, MSCI, MPCI, MFCI, DOS, Recon}

// String returns the paper's abbreviation for the attack type.
func (a AttackType) String() string {
	switch a {
	case Normal:
		return "Normal"
	case NMRI:
		return "NMRI"
	case CMRI:
		return "CMRI"
	case MSCI:
		return "MSCI"
	case MPCI:
		return "MPCI"
	case MFCI:
		return "MFCI"
	case DOS:
		return "DoS"
	case Recon:
		return "Recon"
	default:
		return fmt.Sprintf("AttackType(%d)", int(a))
	}
}

// Package is one network package record with the 17 features of Table I
// plus the ground-truth label. Field names follow the ARFF columns.
type Package struct {
	Address       float64 // station address of the Modbus slave device
	CRCRate       float64 // cyclic-redundancy checksum rate
	Function      float64 // Modbus function code
	Length        float64 // length of the Modbus packet
	Setpoint      float64 // pressure set point (automatic mode)
	Gain          float64 // PID gain
	ResetRate     float64 // PID reset rate
	Deadband      float64 // PID dead band
	CycleTime     float64 // PID cycle time
	Rate          float64 // PID rate
	SystemMode    float64 // automatic (2), manual (1) or off (0)
	ControlScheme float64 // pump (0) or solenoid (1)
	Pump          float64 // pump control: open (1) / off (0), manual mode only
	Solenoid      float64 // valve control: open (1) / closed (0), manual mode only
	Pressure      float64 // pressure measurement
	CmdResponse   float64 // command (1) or response (0)
	Time          float64 // timestamp, seconds

	Label AttackType // ground truth (not visible to detectors)
}

// IsAttack reports whether the package carries a non-normal label.
func (p *Package) IsAttack() bool { return p.Label != Normal }

// Interval returns the time interval feature between p and the previous
// package (paper §VIII-A-1 derives it from consecutive timestamps). The
// first package of a fragment uses interval 0.
func Interval(prev, cur *Package) float64 {
	if prev == nil {
		return 0
	}
	d := cur.Time - prev.Time
	if d < 0 {
		d = 0
	}
	return d
}

// PIDVector returns the five strongly correlated PID control parameters as a
// vector, which the paper clusters jointly (Table III).
func (p *Package) PIDVector() []float64 {
	return []float64{p.Gain, p.ResetRate, p.Deadband, p.CycleTime, p.Rate}
}

// Dataset is an ordered time series of packages.
type Dataset struct {
	Packages []*Package
}

// Len returns the number of packages.
func (d *Dataset) Len() int { return len(d.Packages) }

// CountAttacks returns the number of packages per attack type.
func (d *Dataset) CountAttacks() map[AttackType]int {
	out := make(map[AttackType]int)
	for _, p := range d.Packages {
		out[p.Label]++
	}
	return out
}

// Fragment is a contiguous run of packages (used after anomaly removal
// splits the normal series into pieces).
type Fragment []*Package

// Split is the result of the paper's 6:2:2 chronological partition.
type Split struct {
	// Train and Validation contain only normal packages, divided into
	// contiguous fragments each at least MinFragment long.
	Train, Validation []Fragment
	// Test is the raw final 20% slice, anomalies included.
	Test []*Package
	// Removed counts anomalous packages dropped from train+validation.
	Removed int
	// Short counts normal fragments dropped for being shorter than
	// MinFragment.
	Short int
}

// SplitConfig controls MakeSplit.
type SplitConfig struct {
	// TrainFrac and ValidationFrac are the leading fractions; the remainder
	// is the test set. Defaults: 0.6 and 0.2 (paper §VIII).
	TrainFrac, ValidationFrac float64
	// MinFragment drops normal fragments shorter than this many packages
	// after anomaly removal (paper uses 10).
	MinFragment int
}

func (c *SplitConfig) defaults() {
	if c.TrainFrac <= 0 {
		c.TrainFrac = 0.6
	}
	if c.ValidationFrac <= 0 {
		c.ValidationFrac = 0.2
	}
	if c.MinFragment <= 0 {
		c.MinFragment = 10
	}
}

// MakeSplit partitions the dataset chronologically into train/validation/
// test per the paper: the first 60% (anomalies removed, fragments < 10
// dropped) trains the models, the next 20% (same cleaning) validates
// hyper-parameters, the final 20% (anomalies kept) is the test set.
func MakeSplit(d *Dataset, cfg SplitConfig) (*Split, error) {
	cfg.defaults()
	if cfg.TrainFrac+cfg.ValidationFrac >= 1 {
		return nil, fmt.Errorf("dataset: train+validation fractions %g+%g leave no test data",
			cfg.TrainFrac, cfg.ValidationFrac)
	}
	n := len(d.Packages)
	if n == 0 {
		return nil, fmt.Errorf("dataset: empty dataset")
	}
	trainEnd := int(float64(n) * cfg.TrainFrac)
	valEnd := int(float64(n) * (cfg.TrainFrac + cfg.ValidationFrac))

	s := &Split{Test: d.Packages[valEnd:]}
	var removed, short int
	s.Train, removed, short = cleanFragments(d.Packages[:trainEnd], cfg.MinFragment)
	s.Removed += removed
	s.Short += short
	s.Validation, removed, short = cleanFragments(d.Packages[trainEnd:valEnd], cfg.MinFragment)
	s.Removed += removed
	s.Short += short
	return s, nil
}

// cleanFragments removes attack packages and splits the remainder into
// contiguous normal fragments, dropping fragments shorter than minLen.
func cleanFragments(pkgs []*Package, minLen int) (frags []Fragment, removed, short int) {
	var cur Fragment
	flush := func() {
		if len(cur) == 0 {
			return
		}
		if len(cur) >= minLen {
			frags = append(frags, cur)
		} else {
			short += len(cur)
		}
		cur = nil
	}
	for _, p := range pkgs {
		if p.IsAttack() {
			removed++
			flush()
			continue
		}
		cur = append(cur, p)
	}
	flush()
	return frags, removed, short
}

// FragmentPackages flattens fragments into a single slice, preserving order.
func FragmentPackages(frags []Fragment) []*Package {
	var total int
	for _, f := range frags {
		total += len(f)
	}
	out := make([]*Package, 0, total)
	for _, f := range frags {
		out = append(out, f...)
	}
	return out
}

// arffColumns is the canonical Table I column order.
var arffColumns = []string{
	"address", "crc_rate", "function", "length", "setpoint", "gain",
	"reset_rate", "deadband", "cycle_time", "rate", "system_mode",
	"control_scheme", "pump", "solenoid", "pressure_measurement",
	"command_response", "time", "attack_type",
}

// ToARFF converts the dataset to an ARFF relation with the Table I schema
// plus a numeric attack_type label column, under the historical
// gas_pipeline relation name.
func ToARFF(d *Dataset) *arff.Relation { return ToARFFNamed(d, "gas_pipeline") }

// ToARFFNamed is ToARFF with an explicit relation name (scenario-aware
// tools write the testbed name; readers ignore it).
func ToARFFNamed(d *Dataset, relation string) *arff.Relation {
	rel := &arff.Relation{Name: relation}
	for _, c := range arffColumns {
		rel.Attributes = append(rel.Attributes, arff.Attribute{Name: c, Type: arff.Numeric})
	}
	rel.Rows = make([][]any, 0, len(d.Packages))
	for _, p := range d.Packages {
		rel.Rows = append(rel.Rows, []any{
			p.Address, p.CRCRate, p.Function, p.Length, p.Setpoint, p.Gain,
			p.ResetRate, p.Deadband, p.CycleTime, p.Rate, p.SystemMode,
			p.ControlScheme, p.Pump, p.Solenoid, p.Pressure,
			p.CmdResponse, p.Time, float64(p.Label),
		})
	}
	return rel
}

// FromARFF converts an ARFF relation (Table I schema) back to a Dataset.
// Missing numeric cells become 0, matching the original dataset's handling
// of response-only fields in command packages.
func FromARFF(rel *arff.Relation) (*Dataset, error) {
	idx := make([]int, len(arffColumns))
	for i, c := range arffColumns {
		j := rel.AttrIndex(c)
		if j < 0 && c != "attack_type" {
			return nil, fmt.Errorf("dataset: ARFF relation missing column %q", c)
		}
		idx[i] = j
	}
	d := &Dataset{Packages: make([]*Package, 0, len(rel.Rows))}
	for rowNo, row := range rel.Rows {
		get := func(i int) float64 {
			if idx[i] < 0 {
				return 0
			}
			if v, ok := row[idx[i]].(float64); ok {
				return v
			}
			return 0
		}
		p := &Package{
			Address: get(0), CRCRate: get(1), Function: get(2), Length: get(3),
			Setpoint: get(4), Gain: get(5), ResetRate: get(6), Deadband: get(7),
			CycleTime: get(8), Rate: get(9), SystemMode: get(10),
			ControlScheme: get(11), Pump: get(12), Solenoid: get(13),
			Pressure: get(14), CmdResponse: get(15), Time: get(16),
		}
		label := int(get(17))
		if label < int(Normal) || label > int(Recon) {
			return nil, fmt.Errorf("dataset: row %d: attack_type %d out of range", rowNo+1, label)
		}
		p.Label = AttackType(label)
		d.Packages = append(d.Packages, p)
	}
	return d, nil
}

// WriteARFF writes the dataset in ARFF format.
func WriteARFF(w io.Writer, d *Dataset) error {
	return arff.Write(w, ToARFF(d))
}

// WriteARFFNamed writes the dataset in ARFF format under an explicit
// relation name.
func WriteARFFNamed(w io.Writer, d *Dataset, relation string) error {
	return arff.Write(w, ToARFFNamed(d, relation))
}

// ReadARFF reads a dataset in ARFF format.
func ReadARFF(r io.Reader) (*Dataset, error) {
	rel, err := arff.Read(r)
	if err != nil {
		return nil, err
	}
	return FromARFF(rel)
}

// SortByTime orders packages by timestamp (stable), used when merging
// captures from multiple taps.
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Packages, func(i, j int) bool {
		return d.Packages[i].Time < d.Packages[j].Time
	})
}
