package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"icsdetect/internal/mathx"
)

func makeSeries(n int, attacks map[int]AttackType) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		p := &Package{Time: float64(i) * 0.25, Pressure: 8, Setpoint: 8}
		if at, ok := attacks[i]; ok {
			p.Label = at
		}
		d.Packages = append(d.Packages, p)
	}
	return d
}

func TestMakeSplitProportions(t *testing.T) {
	d := makeSeries(1000, nil)
	s, err := MakeSplit(d, SplitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(FragmentPackages(s.Train)); n != 600 {
		t.Errorf("train = %d, want 600", n)
	}
	if n := len(FragmentPackages(s.Validation)); n != 200 {
		t.Errorf("validation = %d, want 200", n)
	}
	if len(s.Test) != 200 {
		t.Errorf("test = %d, want 200", len(s.Test))
	}
}

func TestMakeSplitChronological(t *testing.T) {
	d := makeSeries(100, nil)
	s, err := MakeSplit(d, SplitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, p := range FragmentPackages(s.Train) {
		if p.Time <= last {
			t.Fatal("train not chronological")
		}
		last = p.Time
	}
	for _, p := range FragmentPackages(s.Validation) {
		if p.Time <= last {
			t.Fatal("validation does not follow train")
		}
		last = p.Time
	}
	for _, p := range s.Test {
		if p.Time <= last {
			t.Fatal("test does not follow validation")
		}
		last = p.Time
	}
}

// TestSplitInvariants: no anomalies in train/validation, all fragments at
// least MinFragment long, anomalies preserved in test (paper §VIII).
func TestSplitInvariants(t *testing.T) {
	rng := mathx.NewRNG(5)
	f := func() bool {
		n := 200 + rng.Intn(800)
		attacks := map[int]AttackType{}
		for i := 0; i < n/10; i++ {
			attacks[rng.Intn(n)] = AttackType(1 + rng.Intn(7))
		}
		d := makeSeries(n, attacks)
		s, err := MakeSplit(d, SplitConfig{MinFragment: 10})
		if err != nil {
			return false
		}
		for _, fr := range append(append([]Fragment{}, s.Train...), s.Validation...) {
			if len(fr) < 10 {
				return false
			}
			for _, p := range fr {
				if p.IsAttack() {
					return false
				}
			}
		}
		// Accounting: clean packages + removed + short == train+validation span.
		cleanCount := len(FragmentPackages(s.Train)) + len(FragmentPackages(s.Validation))
		span := int(float64(n)*0.6) + (int(float64(n)*0.8) - int(float64(n)*0.6))
		return cleanCount+s.Removed+s.Short == span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMakeSplitErrors(t *testing.T) {
	if _, err := MakeSplit(&Dataset{}, SplitConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	d := makeSeries(10, nil)
	if _, err := MakeSplit(d, SplitConfig{TrainFrac: 0.8, ValidationFrac: 0.3}); err == nil {
		t.Error("fractions >= 1 accepted")
	}
}

func TestInterval(t *testing.T) {
	a := &Package{Time: 1.0}
	b := &Package{Time: 1.25}
	if v := Interval(a, b); v != 0.25 {
		t.Errorf("Interval = %v", v)
	}
	if v := Interval(nil, b); v != 0 {
		t.Errorf("first-package interval = %v", v)
	}
	// Clock skew must not produce negative intervals.
	if v := Interval(b, a); v != 0 {
		t.Errorf("negative interval not clamped: %v", v)
	}
}

func TestAttackTypeString(t *testing.T) {
	names := map[AttackType]string{
		Normal: "Normal", NMRI: "NMRI", CMRI: "CMRI", MSCI: "MSCI",
		MPCI: "MPCI", MFCI: "MFCI", DOS: "DoS", Recon: "Recon",
	}
	for at, want := range names {
		if at.String() != want {
			t.Errorf("%d.String() = %q, want %q", at, at.String(), want)
		}
	}
}

func TestARFFRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(6)
	d := &Dataset{}
	for i := 0; i < 200; i++ {
		d.Packages = append(d.Packages, &Package{
			Address:     4,
			CRCRate:     rng.Float64() / 10,
			Function:    16,
			Length:      29,
			Setpoint:    8,
			Gain:        0.45,
			Pressure:    rng.Range(0, 20),
			CmdResponse: float64(i % 2),
			Time:        float64(i) * 0.25,
			Label:       AttackType(rng.Intn(8)),
		})
	}
	var buf bytes.Buffer
	if err := WriteARFF(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("length mismatch: %d vs %d", back.Len(), d.Len())
	}
	for i := range d.Packages {
		if *back.Packages[i] != *d.Packages[i] {
			t.Fatalf("package %d mismatch:\n%+v\n%+v", i, back.Packages[i], d.Packages[i])
		}
	}
}

func TestCountAttacks(t *testing.T) {
	d := makeSeries(10, map[int]AttackType{2: DOS, 5: DOS, 7: Recon})
	counts := d.CountAttacks()
	if counts[Normal] != 7 || counts[DOS] != 2 || counts[Recon] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSortByTime(t *testing.T) {
	d := &Dataset{Packages: []*Package{
		{Time: 3}, {Time: 1}, {Time: 2},
	}}
	d.SortByTime()
	for i := 1; i < len(d.Packages); i++ {
		if d.Packages[i].Time < d.Packages[i-1].Time {
			t.Fatal("not sorted")
		}
	}
}

func TestPIDVector(t *testing.T) {
	p := &Package{Gain: 1, ResetRate: 2, Deadband: 3, CycleTime: 4, Rate: 5}
	v := p.PIDVector()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("PIDVector = %v", v)
		}
	}
}
