package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// PackageContext is the encoded form of one package as it moves through the
// detection pipeline: the raw packages, the discretized feature vector c(t)
// and the signature s(x(t)). It is produced once per package by
// Session.ClassifyOnly and shared by every stage.
type PackageContext struct {
	// Prev is the previous package of the stream (nil at stream start); it
	// supplies the interval feature.
	Prev *dataset.Package
	// Cur is the package being classified.
	Cur *dataset.Package
	// C is the discretized feature vector c(t).
	C []int
	// Sig is the signature s(x(t)) = g(c(t)).
	Sig string
}

// StageState is the per-stream state owned by one pipeline stage. Stages
// that keep no stream state return a shared no-op value.
type StageState interface {
	// Reset returns the state to stream start.
	Reset()
}

// StageDetector is one pluggable stage of the Fig. 3 detection pipeline.
// The framework wires the Bloom package-content level and the LSTM
// time-series level as two stages; sessions and the concurrent engine drive
// any stage slice the same way:
//
//   - Check runs in pipeline order until a stage flags the package; later
//     stages are short-circuited (an unknown signature can never be in the
//     top-k predicted set, so the time-series level never re-examines a
//     package-level detection).
//   - Advance runs for every stage on every package after the verdict is
//     final, whatever the verdict was: anomalous packages still feed the
//     time-series input with the noise flag set (§V-A-3).
//
// Stage values themselves are immutable and safe for concurrent use; all
// per-stream mutability lives in the StageState, so one goroutine per
// stream (or per shard of streams) needs no locking.
type StageDetector interface {
	// Name identifies the stage in diagnostics and counters.
	Name() string
	// Level is the verdict level the stage attributes detections to.
	Level() Level
	// NewState allocates fresh per-stream state for this stage.
	NewState() StageState
	// Check evaluates the package and may flag it in v. It must not mutate
	// st: state only moves in Advance.
	Check(st StageState, pc *PackageContext, v *Verdict)
	// Advance feeds the package into the stream state once v is final.
	Advance(st StageState, pc *PackageContext, v *Verdict)
}

// Stages returns the pipeline stage slice for a detector mode. ModeCombined
// is the paper's two-level framework; the single-stage modes support
// ablation. Session and the engine both build their pipelines here, so the
// two always agree on semantics.
func (f *Framework) Stages(mode Mode) ([]StageDetector, error) {
	pkg := &PackageStage{Detector: f.Package}
	series := &SeriesStage{DB: f.DB, Detector: f.Series, Input: f.Input}
	switch mode {
	case ModeCombined:
		return []StageDetector{pkg, series}, nil
	case ModePackageOnly:
		return []StageDetector{pkg}, nil
	case ModeSeriesOnly:
		return []StageDetector{series}, nil
	default:
		return nil, fmt.Errorf("core: unknown mode %d", int(mode))
	}
}

// nopState is the shared state of stateless stages.
type nopState struct{}

func (nopState) Reset() {}

// PackageStage is the package content level F_p as a pipeline stage: a
// stateless membership test against the Bloom-filter signature store.
type PackageStage struct {
	Detector *PackageDetector
}

// Name implements StageDetector.
func (s *PackageStage) Name() string { return "package" }

// Level implements StageDetector.
func (s *PackageStage) Level() Level { return LevelPackage }

// NewState implements StageDetector; the stage keeps no stream state.
func (s *PackageStage) NewState() StageState { return nopState{} }

// Check implements F_p: flag iff the signature is not in the filter.
func (s *PackageStage) Check(_ StageState, pc *PackageContext, v *Verdict) {
	if s.Detector.Anomalous(pc.Sig) {
		v.Anomaly = true
		v.Level = LevelPackage
	}
}

// Advance implements StageDetector; nothing to advance.
func (s *PackageStage) Advance(StageState, *PackageContext, *Verdict) {}

// SeriesStage is the time-series level F_t as a pipeline stage: the stacked
// LSTM predicts the next signature's class distribution and the stage flags
// packages whose signature ranks outside the top-k predicted set.
type SeriesStage struct {
	DB       *signature.DB
	Detector *TimeSeriesDetector
	Input    *InputEncoder
}

// seriesState is the per-stream recurrent state of the time-series stage.
type seriesState struct {
	rnn *nn.State
	// scores holds the prediction for the *current* package, written by the
	// previous package's Advance as raw logits — on the sequential path
	// (StepLogits) and the batched path (StepBatchLogits) alike, so both
	// rank the exact same values and verdicts are bitwise identical.
	// Ranking logits rather than softmax probabilities also avoids the
	// rounding collapse where two distinct logits map to equal (or
	// underflowed) probabilities and perturb tie-breaking, and it skips
	// Classes() exponentials per package.
	scores []float64
	// x is the reusable LSTM input vector.
	x []float64
	// scored reports whether scores holds a valid prediction (false before
	// the first package has been fed).
	scored bool
}

// Reset implements StageState.
func (st *seriesState) Reset() {
	st.rnn.Reset()
	st.scored = false
	for i := range st.scores {
		st.scores[i] = 0
	}
}

// Name implements StageDetector.
func (s *SeriesStage) Name() string { return "time-series" }

// Level implements StageDetector.
func (s *SeriesStage) Level() Level { return LevelTimeSeries }

// NewState implements StageDetector.
func (s *SeriesStage) NewState() StageState {
	return &seriesState{
		rnn:    s.Detector.Model.NewState(),
		scores: make([]float64, s.Detector.Model.Classes()),
		x:      make([]float64, s.Input.Dim),
	}
}

// Check implements F_t: a package whose signature ranks outside the top-k
// predicted set S(k) is anomalous. The first package of a stream is never
// scored (no prediction exists yet).
func (s *SeriesStage) Check(state StageState, pc *PackageContext, v *Verdict) {
	st := state.(*seriesState)
	if !st.scored {
		return
	}
	class, ok := s.DB.ClassOf(pc.Sig)
	if !ok {
		// The signature passed the Bloom filter (a filter false positive)
		// but is not in the database, so it cannot be among the top-k
		// predicted signatures.
		v.Anomaly = true
		v.Level = LevelTimeSeries
		return
	}
	v.Rank = rankOf(st.scores, class)
	if v.Rank >= s.Detector.K {
		v.Anomaly = true
		v.Level = LevelTimeSeries
	}
}

// encodeStep writes the step input for the classified package into the
// stream's input buffer and marks the stream scored. It is the shared
// pre-step half of both advancement paths — sequential Advance and batched
// SeriesBatch.Queue — so the two can never diverge on what feeds the model:
// the extra input feature carries this package's verdict (§V-A-3: "the
// additional feature of any packages classified as anomalies will be set
// to 1").
func (s *SeriesStage) encodeStep(st *seriesState, pc *PackageContext, v *Verdict) {
	s.Input.EncodeInto(st.x, pc.C, v.Anomaly)
	st.scored = true
}

// Advance feeds the package into the recurrent model for the classification
// of future packages.
func (s *SeriesStage) Advance(state StageState, pc *PackageContext, v *Verdict) {
	st := state.(*seriesState)
	s.encodeStep(st, pc, v)
	s.Detector.Model.StepLogits(st.rnn, st.x, st.scores)
}

// SeriesBatch advances the time-series stage of many independent sessions
// in one batched LSTM pass (nn.StepBatchLogits): the engine's micro-batch
// primitive. Queue completes everything about a classified package except
// the LSTM step, which Flush performs for all queued sessions at once.
//
// Protocol: after Queue(s, …), session s must not classify another package
// until Flush has run. A SeriesBatch is not safe for concurrent use; the
// engine owns one per shard.
type SeriesBatch struct {
	model  *nn.Classifier
	buf    *nn.BatchBuffer
	rnns   []*nn.State
	inputs [][]float64
	scores [][]float64
	n      int
}

// NewSeriesBatch allocates a batch for up to maxBatch concurrently advanced
// sessions. All scratch is allocated here once; Queue and Flush allocate
// nothing.
func (f *Framework) NewSeriesBatch(maxBatch int) *SeriesBatch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &SeriesBatch{
		model:  f.Series.Model,
		buf:    f.Series.Model.NewBatchBuffer(maxBatch),
		rnns:   make([]*nn.State, maxBatch),
		inputs: make([][]float64, maxBatch),
		scores: make([][]float64, maxBatch),
	}
	return b
}

// Len returns the number of queued sessions.
func (b *SeriesBatch) Len() int { return b.n }

// Cap returns the batch capacity.
func (b *SeriesBatch) Cap() int { return len(b.rnns) }

// Full reports whether the batch must be flushed before the next Queue.
func (b *SeriesBatch) Full() bool { return b.n == len(b.rnns) }

// Queue completes the step that v closed for session s: every stage except
// the time-series stage advances inline and the LSTM step is deferred into
// the batch. Sessions whose mode has no time-series stage complete
// immediately and occupy no batch slot.
func (b *SeriesBatch) Queue(s *Session, pc PackageContext, v Verdict) {
	if b.Full() {
		panic("core: SeriesBatch.Queue on a full batch")
	}
	s.prev = pc.Cur
	for i, stage := range s.stages {
		series, ok := stage.(*SeriesStage)
		if !ok {
			stage.Advance(s.states[i], &pc, &v)
			continue
		}
		st := s.states[i].(*seriesState)
		series.encodeStep(st, &pc, &v)
		b.rnns[b.n] = st.rnn
		b.inputs[b.n] = st.x
		b.scores[b.n] = st.scores
		b.n++
	}
}

// Flush advances every queued session's recurrent state through one batched
// matrix-matrix pass and empties the batch.
func (b *SeriesBatch) Flush() {
	if b.n == 0 {
		return
	}
	b.model.StepBatchLogits(b.buf, b.rnns[:b.n], b.inputs[:b.n], b.scores[:b.n])
	b.n = 0
}
