package core

import (
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// PackageContext is the encoded form of one package as it moves through the
// detection pipeline: the raw packages, the discretized feature vector c(t)
// and the signature s(x(t)). It is produced once per package by
// Session.ClassifyOnly and shared by every stage.
type PackageContext struct {
	// Prev is the previous package of the stream (nil at stream start); it
	// supplies the interval feature.
	Prev *dataset.Package
	// Cur is the package being classified.
	Cur *dataset.Package
	// C is the discretized feature vector c(t). The session reuses the
	// backing array across packages, so C is valid only for the current
	// Check/Advance step — stages that need encoded input across steps
	// must copy it (SeriesStage copies into its recurrent input at
	// Advance/Queue time).
	C []int
	// Sig is the signature s(x(t)) = g(c(t)).
	Sig string
}

// StageState is the per-stream state owned by one pipeline stage. Stages
// that keep no stream state return a shared no-op value.
type StageState interface {
	// Reset returns the state to stream start.
	Reset()
}

// StageResult is one stage's opinion on one package, before fusion. A
// stage that has no opinion yet (the LSTM before its first step, a window
// level mid-cycle) leaves Scored false and abstains from the vote.
type StageResult struct {
	// Scored reports whether the stage evaluated the package at all.
	Scored bool
	// Flagged reports whether the stage considers the package anomalous.
	Flagged bool
	// Score is the stage's anomaly score; meaningful only when Scored.
	Score float64
	// Rank is the 0-based top-k rank for ranking stages, -1 otherwise.
	Rank int
}

// StageDetector is one pluggable level of the detection stack. The
// canonical stack wires the Bloom package-content level and the LSTM
// time-series level; the promoted Table IV baselines (internal/baselines)
// and embedder-registered kinds slot in the same way. Sessions and the
// concurrent engine drive any stage slice identically:
//
//   - Check evaluates the package into a StageResult; the session's fusion
//     policy combines the results into the Verdict (first-hit
//     short-circuits after the first flag, majority/weighted run every
//     stage and vote).
//   - Advance runs for every stage on every package after the verdict is
//     final, whatever the verdict was: anomalous packages still feed the
//     time-series input with the noise flag set (§V-A-3).
//
// Stage values themselves are immutable and safe for concurrent use; all
// per-stream mutability lives in the StageState, so one goroutine per
// stream (or per shard of streams) needs no locking.
type StageDetector interface {
	// Name identifies the stage in diagnostics, counters and evidence.
	Name() string
	// Level is the verdict level the stage attributes detections to.
	Level() Level
	// NewState allocates fresh per-stream state for this stage.
	NewState() StageState
	// Check evaluates the package into r. It must not mutate st: state
	// only moves in Advance.
	Check(st StageState, pc *PackageContext, r *StageResult)
	// Advance feeds the package into the stream state once v is final.
	Advance(st StageState, pc *PackageContext, v *Verdict)
}

// Stages returns the pipeline stage slice for a detector mode. ModeCombined
// is the paper's two-level framework; the single-stage modes support
// ablation. Session and the engine both resolve their pipelines through
// the same stack machinery, so the two always agree on semantics.
func (f *Framework) Stages(mode Mode) ([]StageDetector, error) {
	spec, err := SpecForMode(mode)
	if err != nil {
		return nil, err
	}
	st, err := f.NewStack(spec)
	if err != nil {
		return nil, err
	}
	return st.Stages(), nil
}

// nopState is the shared state of stateless stages.
type nopState struct{}

func (nopState) Reset() {}

// PackageStage is the package content level F_p as a pipeline stage: a
// stateless membership test against the Bloom-filter signature store.
type PackageStage struct {
	Detector *PackageDetector
}

// Name implements StageDetector.
func (s *PackageStage) Name() string { return StageBloom }

// Level implements StageDetector.
func (s *PackageStage) Level() Level { return LevelPackage }

// NewState implements StageDetector; the stage keeps no stream state.
func (s *PackageStage) NewState() StageState { return nopState{} }

// Check implements F_p: flag iff the signature is not in the filter.
func (s *PackageStage) Check(_ StageState, pc *PackageContext, r *StageResult) {
	r.Scored = true
	if s.Detector.Anomalous(pc.Sig) {
		r.Flagged = true
		r.Score = 1
	}
}

// Advance implements StageDetector; nothing to advance.
func (s *PackageStage) Advance(StageState, *PackageContext, *Verdict) {}

// SeriesStage is the time-series level F_t as a pipeline stage: the stacked
// LSTM predicts the next signature's class distribution and the stage flags
// packages whose signature ranks outside the top-k predicted set.
type SeriesStage struct {
	DB       *signature.DB
	Detector *TimeSeriesDetector
	Input    *InputEncoder
	// F32 runs the stage on the float32 inference tier: the model's frozen
	// f32 snapshot (nn.InferModel32) with f32 recurrent state, scores and
	// kernels. Verdicts are gated against the f64 goldens by the
	// conformance suite; within f32 every kernel tier and the batched path
	// are bitwise-identical, exactly like the f64 contract.
	F32 bool
}

// seriesState is the per-stream recurrent state of the time-series stage.
// Exactly one of the f64 pair (rnn, scores) and the f32 pair (rnn32,
// scores32) is allocated, per the stage's precision.
type seriesState struct {
	rnn *nn.State
	// scores holds the prediction for the *current* package, written by the
	// previous package's Advance as raw logits — on the sequential path
	// (StepLogits) and the batched path (StepBatchLogits) alike, so both
	// rank the exact same values and verdicts are bitwise identical.
	// Ranking logits rather than softmax probabilities also avoids the
	// rounding collapse where two distinct logits map to equal (or
	// underflowed) probabilities and perturb tie-breaking, and it skips
	// Classes() exponentials per package.
	scores []float64
	// rnn32/scores32 are the float32 twins used when the stage runs the
	// f32 inference tier.
	rnn32    *nn.State32
	scores32 []float32
	// xi is the reusable sparse LSTM input: the active one-hot column
	// indices, strictly ascending. The dense vector is never materialized
	// on the streaming path — the model's one-hot fast path gathers the
	// weight columns directly (bitwise-identical to the dense product).
	xi []int
	// scored reports whether scores holds a valid prediction (false before
	// the first package has been fed).
	scored bool
}

// Reset implements StageState.
func (st *seriesState) Reset() {
	if st.rnn != nil {
		st.rnn.Reset()
	}
	if st.rnn32 != nil {
		st.rnn32.Reset()
	}
	st.scored = false
	for i := range st.scores {
		st.scores[i] = 0
	}
	for i := range st.scores32 {
		st.scores32[i] = 0
	}
}

// Name implements StageDetector.
func (s *SeriesStage) Name() string { return StageLSTM }

// Level implements StageDetector.
func (s *SeriesStage) Level() Level { return LevelTimeSeries }

// NewState implements StageDetector.
func (s *SeriesStage) NewState() StageState {
	st := &seriesState{xi: make([]int, 0, len(s.Input.Buckets)+1)}
	if s.F32 {
		m := s.Detector.Model.Infer32()
		st.rnn32 = m.NewState()
		st.scores32 = make([]float32, m.Classes())
	} else {
		st.rnn = s.Detector.Model.NewState()
		st.scores = make([]float64, s.Detector.Model.Classes())
	}
	return st
}

// Check implements F_t: a package whose signature ranks outside the top-k
// predicted set S(k) is anomalous. The first package of a stream is never
// scored (no prediction exists yet).
func (s *SeriesStage) Check(state StageState, pc *PackageContext, r *StageResult) {
	st := state.(*seriesState)
	s.check(st, pc, r, s.Detector.K)
}

// check is the k-parameterized body of Check, shared with the dynamic-k
// stage wrapper.
func (s *SeriesStage) check(st *seriesState, pc *PackageContext, r *StageResult, k int) {
	if !st.scored {
		return
	}
	r.Scored = true
	class, ok := s.DB.ClassOf(pc.Sig)
	if !ok {
		// The signature passed the Bloom filter (a filter false positive)
		// but is not in the database, so it cannot be among the top-k
		// predicted signatures.
		r.Flagged = true
		r.Score = math.Inf(1)
		return
	}
	if s.F32 {
		r.Rank = rankOf32(st.scores32, class)
	} else {
		r.Rank = rankOf(st.scores, class)
	}
	r.Score = float64(r.Rank)
	if r.Rank >= k {
		r.Flagged = true
	}
}

// encodeStep writes the step input for the classified package into the
// stream's input buffer and marks the stream scored. It is the shared
// pre-step half of both advancement paths — sequential Advance and the
// batched seriesAdvanceBatch.Queue — so the two can never diverge on what
// feeds the model: the extra input feature carries this package's verdict
// (§V-A-3: "the additional feature of any packages classified as anomalies
// will be set to 1").
func (s *SeriesStage) encodeStep(st *seriesState, pc *PackageContext, v *Verdict) {
	st.xi = s.Input.EncodeSparse(st.xi, pc.C, v.Anomaly)
	st.scored = true
}

// Advance feeds the package into the recurrent model for the classification
// of future packages, through the one-hot fast path (bitwise-identical to
// the dense StepLogits on the equivalent encoding).
func (s *SeriesStage) Advance(state StageState, pc *PackageContext, v *Verdict) {
	st := state.(*seriesState)
	s.encodeStep(st, pc, v)
	if s.F32 {
		s.Detector.Model.Infer32().StepLogitsOneHot(st.rnn32, st.xi, st.scores32)
		return
	}
	s.Detector.Model.StepLogitsOneHot(st.rnn, st.xi, st.scores)
}

// NewAdvanceBatch implements AdvanceBatchStage: the LSTM step of many
// independent streams advances through one batched matrix-matrix pass
// (nn.StepBatchLogits) instead of one matrix-vector pass per package. On
// the f32 tier the pass runs on the frozen f32 snapshot instead.
func (s *SeriesStage) NewAdvanceBatch(maxBatch int) AdvanceBatch {
	if s.F32 {
		return newSeriesAdvanceBatch32(s, maxBatch)
	}
	return newSeriesAdvanceBatch(s, maxBatch)
}

// seriesAdvanceBatch defers the recurrent steps of queued streams into one
// batched LSTM pass: the engine's micro-batch primitive for the
// time-series level.
type seriesAdvanceBatch struct {
	stage  *SeriesStage
	buf    *nn.BatchBuffer
	rnns   []*nn.State
	idxs   [][]int
	scores [][]float64
	n      int
}

func newSeriesAdvanceBatch(s *SeriesStage, maxBatch int) *seriesAdvanceBatch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &seriesAdvanceBatch{
		stage:  s,
		buf:    s.Detector.Model.NewBatchBuffer(maxBatch),
		rnns:   make([]*nn.State, maxBatch),
		idxs:   make([][]int, maxBatch),
		scores: make([][]float64, maxBatch),
	}
}

// Len returns the number of queued streams.
func (b *seriesAdvanceBatch) Len() int { return b.n }

// Cap returns the batch capacity.
func (b *seriesAdvanceBatch) Cap() int { return len(b.rnns) }

// Queue completes everything about the classified package except the LSTM
// step, which Flush performs for all queued streams at once.
func (b *seriesAdvanceBatch) Queue(state StageState, pc *PackageContext, v *Verdict) {
	if b.n == len(b.rnns) {
		panic("core: advance batch queue on a full batch")
	}
	st := state.(*seriesState)
	b.stage.encodeStep(st, pc, v)
	b.rnns[b.n] = st.rnn
	b.idxs[b.n] = st.xi
	b.scores[b.n] = st.scores
	b.n++
}

// Flush advances every queued stream's recurrent state through one batched
// matrix-matrix pass — sparse one-hot inputs, same bits as the sequential
// path — and empties the batch.
func (b *seriesAdvanceBatch) Flush() {
	if b.n == 0 {
		return
	}
	b.stage.Detector.Model.StepBatchLogitsOneHot(b.buf, b.rnns[:b.n], b.idxs[:b.n], b.scores[:b.n])
	b.n = 0
}

// seriesAdvanceBatch32 is the float32 twin of seriesAdvanceBatch: queued
// streams advance through one batched pass on the f32 inference snapshot,
// bitwise-identical to the sequential f32 Advance.
type seriesAdvanceBatch32 struct {
	stage  *SeriesStage
	model  *nn.InferModel32
	buf    *nn.BatchBuffer32
	rnns   []*nn.State32
	idxs   [][]int
	scores [][]float32
	n      int
}

func newSeriesAdvanceBatch32(s *SeriesStage, maxBatch int) *seriesAdvanceBatch32 {
	if maxBatch < 1 {
		maxBatch = 1
	}
	m := s.Detector.Model.Infer32()
	return &seriesAdvanceBatch32{
		stage:  s,
		model:  m,
		buf:    m.NewBatchBuffer(maxBatch),
		rnns:   make([]*nn.State32, maxBatch),
		idxs:   make([][]int, maxBatch),
		scores: make([][]float32, maxBatch),
	}
}

// Len returns the number of queued streams.
func (b *seriesAdvanceBatch32) Len() int { return b.n }

// Cap returns the batch capacity.
func (b *seriesAdvanceBatch32) Cap() int { return len(b.rnns) }

// Queue completes everything about the classified package except the f32
// LSTM step, which Flush performs for all queued streams at once.
func (b *seriesAdvanceBatch32) Queue(state StageState, pc *PackageContext, v *Verdict) {
	if b.n == len(b.rnns) {
		panic("core: advance batch queue on a full batch")
	}
	st := state.(*seriesState)
	b.stage.encodeStep(st, pc, v)
	b.rnns[b.n] = st.rnn32
	b.idxs[b.n] = st.xi
	b.scores[b.n] = st.scores32
	b.n++
}

// Flush advances every queued stream through one batched f32 pass and
// empties the batch.
func (b *seriesAdvanceBatch32) Flush() {
	if b.n == 0 {
		return
	}
	b.model.StepBatchLogitsOneHot(b.buf, b.rnns[:b.n], b.idxs[:b.n], b.scores[:b.n])
	b.n = 0
}

var _ AdvanceBatchStage = (*SeriesStage)(nil)

// Compile-time interface checks for the built-in stages.
var (
	_ StageDetector = (*PackageStage)(nil)
	_ StageDetector = (*SeriesStage)(nil)
)
