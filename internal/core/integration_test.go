package core_test

import (
	"bytes"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// trainSmallFramework builds a small but complete framework on simulated
// traffic; shared by the integration tests below.
func trainSmallFramework(t *testing.T, useNoise bool) (*core.Framework, *core.Report, *dataset.Split) {
	t.Helper()
	gen := gaspipeline.DefaultGenConfig(6000, 42)
	ds, err := gaspipeline.Generate(gen)
	if err != nil {
		t.Fatalf("generate dataset: %v", err)
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	cfg := core.DefaultConfig()
	// Scale-appropriate granularity for a 6k-package dataset (the §IV-B
	// search picks something comparable; fixed here to keep the test fast).
	cfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = 15
	cfg.Fit.BatchSize = 4
	cfg.Fit.LR = 3e-3
	cfg.UseNoise = useNoise
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return fw, report, split
}

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	fw, report, split := trainSmallFramework(t, true)

	if report.Signatures < 10 {
		t.Fatalf("suspiciously small signature database: %d", report.Signatures)
	}
	if report.ChosenK < 1 || report.ChosenK > 10 {
		t.Fatalf("chosen k out of range: %d", report.ChosenK)
	}
	t.Logf("signatures=%d k=%d errv=%.4f loss=%.3f",
		report.Signatures, report.ChosenK, report.PackageErrv, report.FinalLoss)

	eval := fw.Evaluate(split.Test, core.ModeCombined)
	t.Logf("combined: %v byLevel=%v n=%d", eval.Summary, eval.ByLevel, eval.Confusion.Total())

	// The combined framework must beat chance decisively on simulated
	// traffic even at this tiny scale.
	if eval.Summary.F1 < 0.5 {
		t.Errorf("combined F1 = %.3f, want >= 0.5", eval.Summary.F1)
	}
	if eval.Summary.Accuracy < 0.7 {
		t.Errorf("combined accuracy = %.3f, want >= 0.7", eval.Summary.Accuracy)
	}

	// MFCI and Recon use signatures that can never be in the database; the
	// package level must catch essentially all of them (paper Table V: 1.00).
	for _, at := range []dataset.AttackType{dataset.MFCI, dataset.Recon} {
		if r := eval.PerAttack.Ratio(at); r < 0.95 && eval.PerAttack.Total[at] > 0 {
			t.Errorf("%v detected ratio = %.2f, want >= 0.95", at, r)
		}
	}

	// Save/load round trip must preserve verdicts.
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	fw2, err := core.Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	eval2 := fw2.Evaluate(split.Test, core.ModeCombined)
	if eval2.Confusion != eval.Confusion {
		t.Errorf("loaded framework verdicts differ: %+v vs %+v", eval2.Confusion, eval.Confusion)
	}
}
