package core

import "icsdetect/internal/dataset"

// The engine dispatches per stage kind, not per hard-coded LSTM pass: a
// stage can expose batched work in two places, and the StackBatch routes
// each place to the stages that support it while everything else runs
// inline (scalar stages cost nothing extra).
//
//   - AdvanceBatch defers the post-verdict stream-state step (the LSTM's
//     recurrent step) and executes it for many streams in one pass.
//   - CheckBatch precomputes the pre-verdict anomaly scores of many
//     streams' upcoming packages in one batched kernel pass (the window
//     levels' PCA/GMM scoring); Check then reads the deposited score
//     instead of recomputing it.
//
// Both paths are bitwise-identical to the sequential ones: the batched
// kernels replicate the scalar kernels' per-element association exactly,
// so a stack driven through a StackBatch produces the same verdicts as a
// sequential Session — the invariant the conformance suite locks for
// every stack.

// AdvanceBatch defers one stage's Advance work across many streams.
// Protocol: after Queue(state, …), the stream owning state must not
// classify another package until Flush has run. An AdvanceBatch is not
// safe for concurrent use; the engine owns one per shard per framework.
type AdvanceBatch interface {
	// Queue defers the stage's Advance for one classified package.
	Queue(st StageState, pc *PackageContext, v *Verdict)
	// Flush executes every queued step in one batched pass.
	Flush()
	// Len returns the number of queued streams.
	Len() int
	// Cap returns the batch capacity.
	Cap() int
}

// AdvanceBatchStage is a stage whose Advance work batches across streams.
type AdvanceBatchStage interface {
	StageDetector
	NewAdvanceBatch(maxBatch int) AdvanceBatch
}

// CheckBatch precomputes one stage's Check scores across many streams.
// Queue inspects the stream's state and the upcoming package; it returns
// false when the stage has no batchable work for that package (the window
// is not completing). Flush runs the batched kernel and deposits each
// score into its stream state, where the stage's Check picks it up; a
// package never queued simply scores inline, bitwise-identically.
type CheckBatch interface {
	Queue(st StageState, cur *dataset.Package) bool
	Flush()
	Len() int
	Cap() int
}

// CheckBatchStage is a stage whose Check scores batch across streams.
type CheckBatchStage interface {
	StageDetector
	NewCheckBatch(maxBatch int) CheckBatch
}

// StackBatch batches the batchable stages of one stack across many
// sessions: the engine's micro-batch primitive, generalized from the
// LSTM-only series batch to arbitrary stacks. All scratch is allocated at
// construction; the queue and flush paths allocate nothing.
type StackBatch struct {
	stack *Stack
	// adv[i] / chk[i] are the per-stage batches, nil for stages without
	// the capability. Indexed by stage position so Queue dispatches with
	// a single slice lookup.
	adv []AdvanceBatch
	chk []CheckBatch
	// advAny is true when any stage batches its Advance (otherwise
	// QueueAdvance always completes inline).
	advAny bool
	// checkFlushes/checkFlushed count every non-empty check-batch flush
	// and the scores it produced — including batches flushed mid-queue
	// when a stage's batch fills — so the engine's counters stay honest
	// under load.
	checkFlushes, checkFlushed uint64
}

// NewBatch allocates a stack batch for up to maxBatch concurrently
// advanced sessions of this stack.
func (st *Stack) NewBatch(maxBatch int) *StackBatch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &StackBatch{
		stack: st,
		adv:   make([]AdvanceBatch, len(st.stages)),
		chk:   make([]CheckBatch, len(st.stages)),
	}
	for i, stage := range st.stages {
		if as, ok := stage.(AdvanceBatchStage); ok {
			b.adv[i] = as.NewAdvanceBatch(maxBatch)
			b.advAny = true
		}
		if cs, ok := stage.(CheckBatchStage); ok {
			b.chk[i] = cs.NewCheckBatch(maxBatch)
		}
	}
	return b
}

// QueueAdvance completes the step that v closed for session s: every
// stage without batched Advance runs inline and the batchable steps are
// deferred. It reports whether anything was deferred — if so, the session
// must not classify again until FlushAdvance has run.
func (b *StackBatch) QueueAdvance(s *Session, pc PackageContext, v Verdict) bool {
	if s.stack != b.stack {
		panic("core: StackBatch.QueueAdvance for a session of a different stack")
	}
	s.prev = pc.Cur
	// Queue/Advance take the structs through the session-resident copies;
	// pointers to the parameters would escape into the stage interfaces and
	// heap-allocate both per package.
	s.pcbuf, s.vbuf = pc, v
	deferred := false
	for i, stage := range s.stack.stages {
		if ab := b.adv[i]; ab != nil {
			ab.Queue(s.states[i], &s.pcbuf, &s.vbuf)
			deferred = true
			continue
		}
		stage.Advance(s.states[i], &s.pcbuf, &s.vbuf)
	}
	return deferred
}

// FlushAdvance executes every deferred Advance step, one batched pass per
// stage, and empties the batch.
func (b *StackBatch) FlushAdvance() {
	for _, ab := range b.adv {
		if ab != nil {
			ab.Flush()
		}
	}
}

// AdvanceFull reports whether any stage's advance batch is at capacity —
// the caller must FlushAdvance before queueing more.
func (b *StackBatch) AdvanceFull() bool {
	for _, ab := range b.adv {
		if ab != nil && ab.Len() == ab.Cap() {
			return true
		}
	}
	return false
}

// AdvanceLen returns the deferred steps currently queued across stages.
func (b *StackBatch) AdvanceLen() int {
	n := 0
	for _, ab := range b.adv {
		if ab != nil {
			n += ab.Len()
		}
	}
	return n
}

// QueueCheck registers session s's upcoming package with every
// check-batchable stage (flushing a stage's batch first if it is full).
// Call FlushCheck before classifying; packages never queued score inline.
func (b *StackBatch) QueueCheck(s *Session, cur *dataset.Package) {
	for i, cb := range b.chk {
		if cb == nil {
			continue
		}
		if cb.Len() == cb.Cap() {
			b.flushCheck(cb)
		}
		cb.Queue(s.states[i], cur)
	}
}

// FlushCheck runs the batched score kernels and deposits the scores into
// the queued stream states.
func (b *StackBatch) FlushCheck() {
	for _, cb := range b.chk {
		if cb != nil {
			b.flushCheck(cb)
		}
	}
}

func (b *StackBatch) flushCheck(cb CheckBatch) {
	if n := cb.Len(); n > 0 {
		b.checkFlushes++
		b.checkFlushed += uint64(n)
	}
	cb.Flush()
}

// CheckBatchStats returns the cumulative non-empty check-batch flushes and
// the scores they produced.
func (b *StackBatch) CheckBatchStats() (flushes, scored uint64) {
	return b.checkFlushes, b.checkFlushed
}

// HasCheck reports whether any stage batches its Check scores; when false
// the engine skips the precompute pass entirely (the default two-level
// stack takes this path).
func (b *StackBatch) HasCheck() bool {
	for _, cb := range b.chk {
		if cb != nil {
			return true
		}
	}
	return false
}

// CheckLen returns the check-phase entries currently queued across stages.
func (b *StackBatch) CheckLen() int {
	n := 0
	for _, cb := range b.chk {
		if cb != nil {
			n += cb.Len()
		}
	}
	return n
}
