package core

import (
	"fmt"
	"strings"

	"icsdetect/internal/dataset"
	"icsdetect/internal/signature"
)

// Explanation attributes a package-level detection to concrete features: it
// names the nearest known-normal signature and the features whose
// discretized values deviate from it. For time-series detections it reports
// the observed rank against the configured k.
type Explanation struct {
	// Verdict is the explained classification.
	Verdict Verdict
	// NearestSignature is the closest signature in the database (package
	// level only).
	NearestSignature string
	// Distance is the Hamming distance to it.
	Distance int
	// Deviations names the differing features with their observed buckets.
	Deviations []Deviation
}

// Deviation is one differing feature.
type Deviation struct {
	Feature  signature.FeatureKind
	Observed int // bucket seen in the package
	Expected int // bucket in the nearest normal signature
	// OutOfRange reports whether the observed bucket is the feature's
	// out-of-range bucket (a value never seen in training at all).
	OutOfRange bool
}

// String renders the deviation for an operator console.
func (d Deviation) String() string {
	if d.OutOfRange {
		return fmt.Sprintf("%v: out-of-range value (expected bucket %d)", d.Feature, d.Expected)
	}
	return fmt.Sprintf("%v: bucket %d (expected %d)", d.Feature, d.Observed, d.Expected)
}

// Explain classifies the package like Session.Classify would, but without a
// session: it evaluates only the content level against the signature
// database and produces a feature-level diagnosis. prev supplies the
// interval feature (nil at stream start).
func (f *Framework) Explain(prev, cur *dataset.Package) *Explanation {
	c := f.Encoder.Encode(prev, cur)
	sig := signature.Signature(c)
	exp := &Explanation{
		Verdict: Verdict{Signature: sig, Rank: -1},
	}
	if !f.Package.Anomalous(sig) {
		return exp
	}
	exp.Verdict.Anomaly = true
	exp.Verdict.Level = LevelPackage

	nearest, dist, differing := f.DB.Nearest(c)
	if nearest == "" {
		return exp
	}
	exp.NearestSignature = nearest
	exp.Distance = dist
	nv, err := signature.ParseSignature(nearest)
	if err != nil {
		return exp
	}
	buckets := f.Encoder.Buckets()
	for _, i := range differing {
		exp.Deviations = append(exp.Deviations, Deviation{
			Feature:    f.Encoder.Features[i].Kind,
			Observed:   c[i],
			Expected:   nv[i],
			OutOfRange: c[i] == buckets[i]-1,
		})
	}
	return exp
}

// String renders the full explanation.
func (e *Explanation) String() string {
	if !e.Verdict.Anomaly {
		return fmt.Sprintf("normal (signature %s known)", e.Verdict.Signature)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "anomalous signature %s (distance %d from nearest normal %s)",
		e.Verdict.Signature, e.Distance, e.NearestSignature)
	for _, d := range e.Deviations {
		b.WriteString("\n  - ")
		b.WriteString(d.String())
	}
	return b.String()
}
