package core_test

import (
	"strings"
	"testing"

	"icsdetect/internal/dataset"
)

func TestExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("explain test uses the trained integration fixture")
	}
	fw, _, split := trainSmallFramework(t, true)

	// A normal package explains as normal.
	var prev *dataset.Package
	normalExplained := false
	for _, p := range split.Test[:400] {
		exp := fw.Explain(prev, p)
		if !exp.Verdict.Anomaly {
			if !p.IsAttack() && strings.Contains(exp.String(), "normal") {
				normalExplained = true
			}
		} else {
			if exp.NearestSignature == "" {
				t.Fatal("anomalous explanation lacks a nearest signature")
			}
			if exp.Distance < 1 {
				t.Fatalf("anomalous signature at distance %d", exp.Distance)
			}
			if len(exp.Deviations) != exp.Distance {
				t.Fatalf("deviations %d != distance %d", len(exp.Deviations), exp.Distance)
			}
			if exp.String() == "" {
				t.Fatal("empty explanation text")
			}
		}
		prev = p
	}
	if !normalExplained {
		t.Error("no normal package was explained")
	}

	// MFCI packages use an unknown function code: the explanation must
	// identify the function feature as deviating.
	prev = nil
	checked := false
	for _, p := range split.Test {
		if p.Label == dataset.MFCI && p.CmdResponse == 1 {
			exp := fw.Explain(prev, p)
			if exp.Verdict.Anomaly {
				found := false
				for _, d := range exp.Deviations {
					if d.Feature.String() == "function" {
						found = true
						if !d.OutOfRange {
							t.Error("MFCI function code not marked out-of-range")
						}
					}
				}
				if !found {
					t.Errorf("MFCI explanation misses the function feature: %v", exp.Deviations)
				}
				checked = true
				break
			}
		}
		prev = p
	}
	if !checked {
		t.Log("no detected MFCI command found to explain (acceptable at tiny scale)")
	}
}
