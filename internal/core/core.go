// Package core implements the paper's primary contribution: the two-level
// ICS anomaly detection framework combining a Bloom-filter package-content
// detector (§IV) with a stacked LSTM softmax time-series detector (§V),
// wired together as in Fig. 3 (§VI).
package core

import (
	"fmt"

	"icsdetect/internal/bloom"
	"icsdetect/internal/signature"
)

// Level identifies which detector level produced a verdict.
type Level int

// Detection levels. The first three are the paper's original two-level
// framework; the remaining levels are the Table IV comparison models
// promoted to streaming pipeline stages (see internal/baselines).
const (
	// LevelNone means the package passed every level of the stack.
	LevelNone Level = iota
	// LevelPackage means the Bloom filter flagged the package (F_p = 1).
	LevelPackage
	// LevelTimeSeries means the LSTM top-k check flagged it (F_t = 1).
	LevelTimeSeries
	// LevelPCA means the PCA-SVD reconstruction-error level flagged it.
	LevelPCA
	// LevelGMM means the Gaussian-mixture likelihood level flagged it.
	LevelGMM
	// LevelIForest means the Isolation Forest level flagged it.
	LevelIForest
	// LevelBayesNet means the Bayesian-network likelihood level flagged it.
	LevelBayesNet
	// LevelSVDD means the support-vector data description level flagged it.
	LevelSVDD
	// LevelBF4 means the 4-package composite Bloom filter level flagged it.
	LevelBF4
	// LevelAE means the LSTM-autoencoder reconstruction-error level
	// flagged it (see internal/recon).
	LevelAE
	// LevelSeq2Seq means the seq2seq prediction-error level flagged it.
	LevelSeq2Seq
	// LevelCNN means the 1D-CNN prediction-error level flagged it.
	LevelCNN

	// NumLevels bounds the Level space (for per-level counter arrays).
	NumLevels
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelPackage:
		return "package"
	case LevelTimeSeries:
		return "time-series"
	case LevelPCA:
		return "pca"
	case LevelGMM:
		return "gmm"
	case LevelIForest:
		return "iforest"
	case LevelBayesNet:
		return "bayesnet"
	case LevelSVDD:
		return "svdd"
	case LevelBF4:
		return "bf4"
	case LevelAE:
		return "ae"
	case LevelSeq2Seq:
		return "seq2seq"
	case LevelCNN:
		return "cnn"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// LevelEvidence is the recorded outcome of one stage's Check on one
// package: what the level saw before the fusion policy combined the stack
// into a single verdict.
type LevelEvidence struct {
	// Stage is the stage's registry kind / diagnostic name.
	Stage string
	// Level is the verdict level the stage attributes detections to.
	Level Level
	// Scored reports whether the stage had an opinion at all (the LSTM
	// abstains on the first package of a stream, window levels abstain
	// mid-cycle).
	Scored bool
	// Flagged reports whether the stage considered the package anomalous.
	Flagged bool
	// Score is the stage's anomaly score (rank for the LSTM level,
	// reconstruction error for PCA, negative log-likelihood for GMM, …);
	// meaningful only when Scored.
	Score float64
	// Rank is the 0-based top-k rank for ranking stages, -1 otherwise.
	Rank int
}

// Verdict is the classification of one package.
type Verdict struct {
	// Anomaly reports whether the package was classified anomalous.
	Anomaly bool
	// Level identifies the detector that fired (LevelNone if clean). Under
	// majority/weighted fusion it is the first level that voted anomalous.
	Level Level
	// Signature is the package's signature s(x(t)).
	Signature string
	// Rank is the 0-based rank of the signature in the time-series
	// prediction, or -1 when the time-series level did not score the
	// package (first package of a stream, or a package-level detection).
	Rank int
	// Evidence records the per-level outcomes behind the verdict, in stack
	// order. It is nil for the canonical first-hit stacks of the original
	// two-level framework (bloom,lstm and its single-level ablations),
	// whose Level and Rank fields already carry the complete evidence —
	// this keeps the hot path allocation-lean and the v1 golden-verdict
	// format byte-stable.
	Evidence []LevelEvidence
}

// Equal reports whether two verdicts are identical, including their
// per-level evidence. (Verdict contains a slice, so == does not compile;
// equivalence tests compare through Equal.)
func (v Verdict) Equal(o Verdict) bool {
	if v.Anomaly != o.Anomaly || v.Level != o.Level ||
		v.Signature != o.Signature || v.Rank != o.Rank ||
		len(v.Evidence) != len(o.Evidence) {
		return false
	}
	for i := range v.Evidence {
		if v.Evidence[i] != o.Evidence[i] {
			return false
		}
	}
	return true
}

// PackageDetector is the package content level anomaly detector F_p (§IV-C):
// a Bloom filter storing the signature database of normal packages.
type PackageDetector struct {
	Filter *bloom.Filter
}

// NewPackageDetector inserts every signature of db into a Bloom filter sized
// for the target false-positive probability fp.
func NewPackageDetector(db *signature.DB, fp float64) (*PackageDetector, error) {
	f, err := bloom.NewWithEstimates(uint64(max(db.Size(), 1)), fp)
	if err != nil {
		return nil, fmt.Errorf("core: package detector: %w", err)
	}
	for _, s := range db.List {
		f.AddString(s)
	}
	return &PackageDetector{Filter: f}, nil
}

// Anomalous implements F_p: true iff the signature is not in the filter.
// Bloom false positives can only make the detector *miss* (classify an
// anomalous signature as present), never raise false alarms, matching the
// paper's design.
func (d *PackageDetector) Anomalous(sig string) bool {
	return !d.Filter.ContainsString(sig)
}

// SizeBytes returns the filter's memory footprint.
func (d *PackageDetector) SizeBytes() int { return d.Filter.SizeBytes() }
