// Package core implements the paper's primary contribution: the two-level
// ICS anomaly detection framework combining a Bloom-filter package-content
// detector (§IV) with a stacked LSTM softmax time-series detector (§V),
// wired together as in Fig. 3 (§VI).
package core

import (
	"fmt"

	"icsdetect/internal/bloom"
	"icsdetect/internal/signature"
)

// Level identifies which detector level produced a verdict.
type Level int

// Detection levels.
const (
	// LevelNone means the package passed both detectors.
	LevelNone Level = iota
	// LevelPackage means the Bloom filter flagged the package (F_p = 1).
	LevelPackage
	// LevelTimeSeries means the LSTM top-k check flagged it (F_t = 1).
	LevelTimeSeries
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelPackage:
		return "package"
	case LevelTimeSeries:
		return "time-series"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Verdict is the classification of one package.
type Verdict struct {
	// Anomaly reports whether the package was classified anomalous.
	Anomaly bool
	// Level identifies the detector that fired (LevelNone if clean).
	Level Level
	// Signature is the package's signature s(x(t)).
	Signature string
	// Rank is the 0-based rank of the signature in the time-series
	// prediction, or -1 when the time-series level did not score the
	// package (first package of a stream, or a package-level detection).
	Rank int
}

// PackageDetector is the package content level anomaly detector F_p (§IV-C):
// a Bloom filter storing the signature database of normal packages.
type PackageDetector struct {
	Filter *bloom.Filter
}

// NewPackageDetector inserts every signature of db into a Bloom filter sized
// for the target false-positive probability fp.
func NewPackageDetector(db *signature.DB, fp float64) (*PackageDetector, error) {
	f, err := bloom.NewWithEstimates(uint64(max(db.Size(), 1)), fp)
	if err != nil {
		return nil, fmt.Errorf("core: package detector: %w", err)
	}
	for _, s := range db.List {
		f.AddString(s)
	}
	return &PackageDetector{Filter: f}, nil
}

// Anomalous implements F_p: true iff the signature is not in the filter.
// Bloom false positives can only make the detector *miss* (classify an
// anomalous signature as present), never raise false alarms, matching the
// paper's design.
func (d *PackageDetector) Anomalous(sig string) bool {
	return !d.Filter.ContainsString(sig)
}

// SizeBytes returns the filter's memory footprint.
func (d *PackageDetector) SizeBytes() int { return d.Filter.SizeBytes() }
