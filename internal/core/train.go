package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// Config holds every training knob of the framework. The defaults mirror
// the paper's experimental setup at a laptop-friendly scale; PaperScale
// produces the full-size configuration.
type Config struct {
	// Granularity fixes the discretization; when zero-valued, a
	// granularity search (§IV-B) with Search is run instead.
	Granularity signature.Granularity
	// Search configures the granularity search when Granularity is zero.
	Search signature.SearchConfig
	// BloomFP is the Bloom filter's target false-positive probability.
	BloomFP float64
	// Hidden lists the stacked LSTM layer sizes (paper: 256, 256).
	Hidden []int
	// UseNoise enables probabilistic-noise training (§V-A-3).
	UseNoise bool
	// Lambda is the noise frequency parameter λ (paper: 10).
	Lambda float64
	// NoiseMaxFeatures is l, the max corrupted features per noisy package.
	NoiseMaxFeatures int
	// ThetaSeries is the acceptable false-positive rate θ for selecting k
	// (paper: 0.05).
	ThetaSeries float64
	// MaxK bounds the top-k error curve (paper plots k ≤ 10).
	MaxK int
	// Fit configures the LSTM optimizer loop, including the gradient
	// engine (Fit.Trainer: batched by default, reference as the escape
	// hatch — both produce bitwise-identical models).
	Fit nn.TrainConfig
	// Checkpoint, when non-nil, receives a provisional framework after
	// every training epoch so long runs can be saved incrementally. The
	// framework shares the live (partially trained) model and uses k=1
	// until selection runs after the final epoch; the callback must not
	// retain it across epochs.
	Checkpoint func(epoch int, fw *Framework)
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns a configuration that trains in seconds on small
// datasets while preserving every qualitative behaviour of the paper's
// setup.
func DefaultConfig() Config {
	return Config{
		Search:           signature.DefaultSearchConfig(),
		BloomFP:          0.005,
		Hidden:           []int{64, 64},
		UseNoise:         true,
		Lambda:           10,
		NoiseMaxFeatures: 3,
		ThetaSeries:      0.05,
		MaxK:             10,
		Fit: nn.TrainConfig{
			Epochs:    10,
			Window:    32,
			BatchSize: 8,
			LR:        2e-3,
			ClipNorm:  5,
		},
		Seed: 1,
	}
}

// PaperScale returns the paper's full-size configuration: two stacked LSTM
// layers of 256 units trained for 50 epochs.
func PaperScale() Config {
	cfg := DefaultConfig()
	cfg.Hidden = []int{256, 256}
	cfg.Fit.Epochs = 50
	return cfg
}

// Report captures everything the training pipeline measured, feeding the
// experiment harness (Figs. 5 and 6, Table III).
type Report struct {
	// Granularity is the discretization actually used.
	Granularity signature.Granularity
	// SearchPoints holds the granularity search trace (nil when the
	// granularity was fixed).
	SearchPoints []signature.SearchPoint
	// Signatures is |S|.
	Signatures int
	// FinalLoss is the mean per-step softmax loss after the last epoch.
	FinalLoss float64
	// TrainCurve and ValidationCurve are the top-k error curves (Fig. 6).
	TrainCurve, ValidationCurve *metrics.TopKCurve
	// ChosenK is the selected k (paper: 4).
	ChosenK int
	// PackageErrv is the package-level validation error (expected FP rate).
	PackageErrv float64
}

// Train builds the complete two-level framework from an attack-free
// train/validation split: fits the discretizers, builds the signature
// database and Bloom filter, trains the stacked LSTM (with or without
// probabilistic noise), and selects k on the validation set.
func Train(split *dataset.Split, cfg Config) (*Framework, *Report, error) {
	if len(split.Train) == 0 || len(split.Validation) == 0 {
		return nil, nil, fmt.Errorf("core: empty train or validation fragments")
	}
	if cfg.BloomFP <= 0 || cfg.BloomFP >= 1 {
		return nil, nil, fmt.Errorf("core: BloomFP must be in (0,1), got %g", cfg.BloomFP)
	}
	if cfg.ThetaSeries <= 0 {
		return nil, nil, fmt.Errorf("core: ThetaSeries must be positive, got %g", cfg.ThetaSeries)
	}

	report := &Report{}

	// 1. Discretization: fixed granularity or the §IV-B search.
	var (
		enc *signature.Encoder
		db  *signature.DB
		err error
	)
	if (cfg.Granularity != signature.Granularity{}) {
		if err := cfg.Granularity.Validate(); err != nil {
			return nil, nil, err
		}
		enc, err = signature.FitEncoder(split.Train, cfg.Granularity, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		db = signature.BuildDB(enc, split.Train)
		report.Granularity = cfg.Granularity
	} else {
		search := cfg.Search
		search.Seed = cfg.Seed
		res, err := signature.Search(split.Train, split.Validation, search)
		if err != nil {
			return nil, nil, err
		}
		enc, db = res.BestEncoder, res.BestDB
		report.Granularity = res.Best
		report.SearchPoints = res.Points
	}
	report.Signatures = db.Size()
	report.PackageErrv = db.ValidationError(enc, split.Validation)

	// 2. Package content level: Bloom filter over the signature database.
	pkg, err := NewPackageDetector(db, cfg.BloomFP)
	if err != nil {
		return nil, nil, err
	}

	// 3. Time-series level: stacked LSTM softmax classifier.
	ienc := NewInputEncoder(enc)
	model, err := nn.NewClassifier(ienc.Dim, cfg.Hidden, db.Size(), cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	var noise *NoiseInjector
	if cfg.UseNoise {
		noise, err = NewNoiseInjector(cfg.Lambda, cfg.NoiseMaxFeatures, db, ienc, cfg.Seed^0x5EED)
		if err != nil {
			return nil, nil, err
		}
	}
	seqs := BuildSequences(enc, ienc, db, split.Train, noise)
	fit := cfg.Fit
	fit.Seed = cfg.Seed ^ 0x7121
	if cfg.Checkpoint != nil {
		userEnd := fit.EpochEnd
		fit.EpochEnd = func(st nn.EpochStats) {
			if userEnd != nil {
				userEnd(st)
			}
			cfg.Checkpoint(st.Epoch, &Framework{
				Encoder: enc,
				DB:      db,
				Package: pkg,
				Series:  &TimeSeriesDetector{Model: model, K: 1},
				Input:   ienc,
			})
		}
	}
	loss, err := nn.Train(model, seqs, fit)
	if err != nil {
		return nil, nil, err
	}
	report.FinalLoss = loss

	series := &TimeSeriesDetector{Model: model, K: 1}

	// 4. Top-k error curves and k selection (§V-A-2, Fig. 6).
	maxK := cfg.MaxK
	if maxK < 1 {
		maxK = 10
	}
	report.TrainCurve = metrics.NewTopKCurve(
		series.TopKRanks(enc, ienc, db, split.Train), maxK)
	curve, k, err := series.SelectK(enc, ienc, db, split.Validation, cfg.ThetaSeries, maxK)
	if err != nil {
		return nil, nil, err
	}
	report.ValidationCurve = curve
	report.ChosenK = k
	series.K = k

	return &Framework{
		Encoder: enc,
		DB:      db,
		Package: pkg,
		Series:  series,
		Input:   ienc,
	}, report, nil
}
