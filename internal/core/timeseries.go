package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// TimeSeriesDetector is the time-series level anomaly detector F_t (§V): a
// stacked LSTM softmax classifier predicting the next package's signature;
// a package is anomalous iff its signature is outside the top-k predicted
// set S(k).
type TimeSeriesDetector struct {
	Model *nn.Classifier
	K     int
}

// rankOf returns the 0-based rank of class in probs: the number of classes
// with strictly greater probability, ties broken toward earlier indices so
// the rank is deterministic. A package passes F_t iff rank < k.
func rankOf(probs []float64, class int) int {
	p := probs[class]
	rank := 0
	for i, v := range probs {
		if v > p || (v == p && i < class) {
			rank++
		}
	}
	return rank
}

// BuildSequences converts attack-free fragments into training sequences:
// Inputs[t] encodes package t of the fragment (optionally noise-corrupted),
// Targets[t] is the class of package t+1's signature. The final package of
// each fragment has no target.
//
// noise may be nil to train without probabilistic noise (the paper's
// ablation in Fig. 6/7).
func BuildSequences(enc *signature.Encoder, ienc *InputEncoder, db *signature.DB,
	frags []dataset.Fragment, noise *NoiseInjector) []nn.Sequence {
	seqs := make([]nn.Sequence, 0, len(frags))
	for _, frag := range frags {
		if len(frag) < 2 {
			continue
		}
		cs := enc.EncodeFragment(frag)
		seq := nn.Sequence{
			Inputs:  make([][]float64, len(frag)-1),
			Targets: make([]int, len(frag)-1),
		}
		for t := 0; t < len(frag)-1; t++ {
			c := cs[t]
			noisy := false
			if noise != nil {
				c, noisy = noise.Apply(c, signature.Signature(cs[t]))
			}
			seq.Inputs[t] = ienc.Encode(c, noisy)
			nextSig := signature.Signature(cs[t+1])
			if class, ok := db.ClassOf(nextSig); ok {
				seq.Targets[t] = class
			} else {
				seq.Targets[t] = -1 // unseen target (cannot happen on train data)
			}
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// TopKRanks runs the model statefully over attack-free fragments and
// returns the rank of every true next-signature, the raw material for the
// top-k error curve err_k (§V-A-2). Ranks are computed over raw logits,
// exactly as the deployed detector ranks them (SeriesStage), so the
// calibrated k and the runtime top-k boundary always agree.
func (d *TimeSeriesDetector) TopKRanks(enc *signature.Encoder, ienc *InputEncoder,
	db *signature.DB, frags []dataset.Fragment) []int {
	var ranks []int
	scores := make([]float64, d.Model.Classes())
	xi := make([]int, 0, len(ienc.Buckets)+1)
	for _, frag := range frags {
		if len(frag) < 2 {
			continue
		}
		state := d.Model.NewState()
		cs := enc.EncodeFragment(frag)
		for t := 0; t < len(frag)-1; t++ {
			// Same one-hot fast path as the deployed SeriesStage — the
			// calibration ranks the exact bits the runtime will rank.
			xi = ienc.EncodeSparse(xi, cs[t], false)
			d.Model.StepLogitsOneHot(state, xi, scores)
			nextSig := signature.Signature(cs[t+1])
			class, ok := db.ClassOf(nextSig)
			if !ok {
				// Signature absent from the database can never be in S(k);
				// record a rank beyond any k.
				ranks = append(ranks, d.Model.Classes())
				continue
			}
			ranks = append(ranks, rankOf(scores, class))
		}
	}
	return ranks
}

// SelectK evaluates the top-k error curve on validation fragments and picks
// the minimal k with err_k < theta (§V-A-2). maxK bounds the curve.
func (d *TimeSeriesDetector) SelectK(enc *signature.Encoder, ienc *InputEncoder,
	db *signature.DB, validation []dataset.Fragment, theta float64, maxK int) (*metrics.TopKCurve, int, error) {
	if maxK < 1 {
		return nil, 0, fmt.Errorf("core: maxK must be >= 1, got %d", maxK)
	}
	ranks := d.TopKRanks(enc, ienc, db, validation)
	curve := metrics.NewTopKCurve(ranks, maxK)
	k, err := curve.MinKBelow(theta)
	if err != nil {
		return nil, 0, err
	}
	if k > maxK {
		// No k satisfies θ on this validation set; use the best available
		// and report it via the curve so callers can inspect.
		k = maxK
	}
	return curve, k, nil
}
