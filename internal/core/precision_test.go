package core

import (
	"strings"
	"testing"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", PrecisionF64},
		{"f64", PrecisionF64},
		{"float64", PrecisionF64},
		{"double", PrecisionF64},
		{"f32", PrecisionF32},
		{"float32", PrecisionF32},
		{"single", PrecisionF32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"f16", "bf16", "fp32", "quad"} {
		if _, err := ParsePrecision(bad); err == nil {
			t.Errorf("ParsePrecision(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("ParsePrecision(%q) error %q does not name the input", bad, err)
		}
	}
}

// TestWithPrecisionFailFast: the -precision startup validation. Unknown
// names error naming the supported set; an f32 stack containing a level
// without an f32 path errors listing the f32-capable kinds, mirroring the
// -levels registry error.
func TestWithPrecisionFailFast(t *testing.T) {
	spec := DefaultStackSpec()
	if _, err := spec.WithPrecision("f16"); err == nil || !strings.Contains(err.Error(), "f64 or f32") {
		t.Fatalf("unknown precision error = %v, want the supported set", err)
	}
	got, err := spec.WithPrecision("f32")
	if err != nil {
		t.Fatalf("default stack at f32: %v", err)
	}
	if got.Precision != PrecisionF32 {
		t.Fatalf("precision not applied: %+v", got)
	}

	// A registered kind without an f32 path must be rejected at validation
	// time, naming the capable set.
	RegisterStage("f64only-test", StageFactory{
		Build: func(*Framework, StageSpec) (StageDetector, error) { return nil, nil },
	})
	mixed := StackSpec{Stages: []StageSpec{{Kind: StageBloom}, {Kind: "f64only-test"}}}
	if _, err := mixed.WithPrecision("f32"); err == nil {
		t.Fatal("f32 stack with an f64-only level validated")
	} else {
		for _, want := range []string{"f64only-test", "f32-capable", StageLSTM} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("capability error %q does not mention %q", err, want)
			}
		}
	}
	// The same stack at the default tier stays valid.
	if _, err := mixed.WithPrecision(""); err != nil {
		t.Fatalf("f64 validation of a mixed stack: %v", err)
	}
	if err := (StackSpec{Stages: []StageSpec{{Kind: StageBloom}}, Precision: "f16"}).Validate(); err == nil {
		t.Fatal("spec with a bogus precision value validated")
	}
}

func TestF32StageKindsContainsBuiltins(t *testing.T) {
	kinds := strings.Join(F32StageKinds(), ",")
	for _, want := range []string{StageBloom, StageLSTM, StageLSTMDynamic} {
		if !strings.Contains(kinds, want) {
			t.Errorf("F32StageKinds() = %s missing %s", kinds, want)
		}
	}
}

// TestRankOf32MatchesRankOf: the f32 ranker applies the exact f64
// tie-break rule (ties count toward earlier indices).
func TestRankOf32MatchesRankOf(t *testing.T) {
	cases := [][]float64{
		{0.5, 0.25, 0.25},
		{0.25, 0.25, 0.5},
		{1, 1, 1, 1},
		{-3, 2, 2, -3, 7},
		{0},
	}
	for _, probs := range cases {
		p32 := make([]float32, len(probs))
		for i, v := range probs {
			p32[i] = float32(v)
		}
		for class := range probs {
			if got, want := rankOf32(p32, class), rankOf(probs, class); got != want {
				t.Errorf("rankOf32(%v, %d) = %d, rankOf = %d", probs, class, got, want)
			}
		}
	}
}

// TestStackStringIncludesPrecision: the flag-syntax rendering stays
// byte-identical at the default tier and names the tier at f32.
func TestStackStringIncludesPrecision(t *testing.T) {
	spec := DefaultStackSpec()
	if got := spec.String(); got != "bloom,lstm/first-hit" {
		t.Fatalf("default spec renders %q", got)
	}
	spec.Precision = PrecisionF32
	if got := spec.String(); got != "bloom,lstm/first-hit/f32" {
		t.Fatalf("f32 spec renders %q", got)
	}
}
