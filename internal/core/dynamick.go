package core

import (
	"fmt"

	"icsdetect/internal/dataset"
)

// DynamicKConfig tunes the adaptive top-k controller. The paper lists
// dynamically adjusted k as future work (§IX: "we will design effective
// approaches to adjust the value of k dynamically based on previous
// predictions"); this implementation realizes it with a feedback rule on
// the recent alert rate of the time-series level.
type DynamicKConfig struct {
	// MinK and MaxK bound the adjustment range around the trained k.
	MinK, MaxK int
	// TargetRate is the acceptable fraction of time-series alerts among
	// recently scored packages (≈ the θ of the k-selection rule).
	TargetRate float64
	// Window is the number of recent scored packages the rate is computed
	// over.
	Window int
}

// DefaultDynamicKConfig derives bounds from the trained k.
func DefaultDynamicKConfig(trainedK int) DynamicKConfig {
	minK := trainedK - 2
	if minK < 1 {
		minK = 1
	}
	return DynamicKConfig{
		MinK:       minK,
		MaxK:       trainedK + 4,
		TargetRate: 0.05,
		Window:     200,
	}
}

// Validate reports configuration errors.
func (c *DynamicKConfig) Validate() error {
	if c.MinK < 1 || c.MaxK < c.MinK {
		return fmt.Errorf("core: dynamic k bounds invalid [%d, %d]", c.MinK, c.MaxK)
	}
	if c.TargetRate <= 0 || c.TargetRate >= 1 {
		return fmt.Errorf("core: dynamic k target rate %g outside (0,1)", c.TargetRate)
	}
	if c.Window < 10 {
		return fmt.Errorf("core: dynamic k window %d too small", c.Window)
	}
	return nil
}

// DynamicSeriesStage is the time-series level with the adaptive-k
// controller folded into the stage stack (registry kind "lstm-dynamic"):
// every stream carries its own adaptive k, so dynamic-k works identically
// under sequential sessions and the batched multi-stream engine. When the
// recent per-stream alert rate of the level exceeds the target, k grows
// (fewer false positives); when the rate falls well below target, k
// shrinks back toward the trained value (higher sensitivity).
//
// The controller observes its own level's outcome from the verdict's
// per-level evidence during Advance (Check must not mutate stream state),
// so stacks containing this stage always record evidence — which the
// stack machinery guarantees, since the kind is not one of the built-in
// two. Under first-hit fusion a package-level detection short-circuits
// this stage and leaves no evidence entry, so — exactly like the legacy
// DynamicSession — Bloom detections never influence the alert rate.
type DynamicSeriesStage struct {
	Series *SeriesStage
	Cfg    DynamicKConfig
}

var _ StageDetector = (*DynamicSeriesStage)(nil)
var _ AdvanceBatchStage = (*DynamicSeriesStage)(nil)

// dynamicState is the per-stream state: the wrapped recurrent state plus
// the controller (current k and the ring buffer of recent level verdicts).
type dynamicState struct {
	inner  *seriesState
	k      int
	recent []bool
	idx    int
	filled int
	alerts int
}

// Reset implements StageState.
func (st *dynamicState) Reset() {
	st.inner.Reset()
	// k intentionally survives a reset along with an emptied controller
	// window: the operating point was learned from this stream's traffic.
	st.idx, st.filled, st.alerts = 0, 0, 0
	for i := range st.recent {
		st.recent[i] = false
	}
}

// Name implements StageDetector.
func (s *DynamicSeriesStage) Name() string { return StageLSTMDynamic }

// Level implements StageDetector; detections are still time-series
// detections, whatever the current k.
func (s *DynamicSeriesStage) Level() Level { return LevelTimeSeries }

// NewState implements StageDetector.
func (s *DynamicSeriesStage) NewState() StageState {
	return &dynamicState{
		inner:  s.Series.NewState().(*seriesState),
		k:      s.Series.Detector.K,
		recent: make([]bool, s.Cfg.Window),
	}
}

// Check implements StageDetector: the top-k test at the stream's current
// adaptive k.
func (s *DynamicSeriesStage) Check(state StageState, pc *PackageContext, r *StageResult) {
	st := state.(*dynamicState)
	s.Series.check(st.inner, pc, r, st.k)
}

// Advance updates the controller from the level's recorded evidence and
// feeds the package into the recurrent model.
func (s *DynamicSeriesStage) Advance(state StageState, pc *PackageContext, v *Verdict) {
	st := state.(*dynamicState)
	s.observeEvidence(st, v)
	s.Series.Advance(st.inner, pc, v)
}

// observeEvidence finds this stage's evidence entry in the final verdict
// (absent when an earlier level short-circuited the check) and feeds the
// controller.
func (s *DynamicSeriesStage) observeEvidence(st *dynamicState, v *Verdict) {
	for i := range v.Evidence {
		if v.Evidence[i].Stage == StageLSTMDynamic {
			s.observe(st, v.Evidence[i].Flagged)
			return
		}
	}
}

func (s *DynamicSeriesStage) observe(st *dynamicState, alert bool) {
	if st.filled == len(st.recent) {
		if st.recent[st.idx] {
			st.alerts--
		}
	} else {
		st.filled++
	}
	st.recent[st.idx] = alert
	if alert {
		st.alerts++
	}
	st.idx = (st.idx + 1) % len(st.recent)

	if st.filled < len(st.recent)/2 {
		return // not enough evidence yet
	}
	rate := float64(st.alerts) / float64(st.filled)
	switch {
	case rate > s.Cfg.TargetRate*1.5 && st.k < s.Cfg.MaxK:
		st.k++
		s.decayHalf(st)
	case rate < s.Cfg.TargetRate/2 && st.k > s.Cfg.MinK:
		st.k--
		s.decayHalf(st)
	}
}

// decayHalf forgets half the window after a k change so the controller
// re-estimates the rate at the new operating point instead of oscillating.
func (s *DynamicSeriesStage) decayHalf(st *dynamicState) {
	drop := st.filled / 2
	for i := 0; i < drop; i++ {
		pos := (st.idx + i) % len(st.recent)
		if st.recent[pos] {
			st.alerts--
			st.recent[pos] = false
		}
	}
	st.filled -= drop
	if st.filled < 0 {
		st.filled = 0
	}
}

// NewAdvanceBatch implements AdvanceBatchStage: the controller updates
// inline at queue time and the recurrent step joins the wrapped series
// stage's batched pass, so dynamic-k streams micro-batch with everything
// else on the shard.
func (s *DynamicSeriesStage) NewAdvanceBatch(maxBatch int) AdvanceBatch {
	return &dynamicAdvanceBatch{stage: s, inner: s.Series.NewAdvanceBatch(maxBatch)}
}

type dynamicAdvanceBatch struct {
	stage *DynamicSeriesStage
	inner AdvanceBatch
}

func (b *dynamicAdvanceBatch) Queue(state StageState, pc *PackageContext, v *Verdict) {
	st := state.(*dynamicState)
	b.stage.observeEvidence(st, v)
	b.inner.Queue(st.inner, pc, v)
}

func (b *dynamicAdvanceBatch) Flush()   { b.inner.Flush() }
func (b *dynamicAdvanceBatch) Len() int { return b.inner.Len() }
func (b *dynamicAdvanceBatch) Cap() int { return b.inner.Cap() }

// DynamicSession wraps a Session over the [bloom, lstm-dynamic] stack.
//
// Deprecated: DynamicSession predates the composable stack; the adaptive-k
// controller now lives in DynamicSeriesStage, which any stack (and the
// concurrent engine) can include via the "lstm-dynamic" kind. This shim
// remains for callers of the original API and behaves identically.
type DynamicSession struct {
	sess  *Session
	state *dynamicState
}

// NewDynamicSession starts an adaptive session in combined mode.
func (f *Framework) NewDynamicSession(cfg DynamicKConfig) (*DynamicSession, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stage := &DynamicSeriesStage{
		Series: &SeriesStage{DB: f.DB, Detector: f.Series, Input: f.Input},
		Cfg:    cfg,
	}
	spec := StackSpec{
		Stages: []StageSpec{{Kind: StageBloom}, {Kind: StageLSTMDynamic}},
		Fusion: FusionFirstHit,
	}
	stack, err := NewStackFromStages(f, spec, []StageDetector{
		&PackageStage{Detector: f.Package}, stage,
	})
	if err != nil {
		return nil, err
	}
	sess := stack.NewSession()
	return &DynamicSession{sess: sess, state: sess.states[1].(*dynamicState)}, nil
}

// K returns the current adaptive k.
func (s *DynamicSession) K() int { return s.state.k }

// Classify classifies the next package with the current k and updates the
// controller.
func (s *DynamicSession) Classify(cur *dataset.Package) Verdict {
	return s.sess.Classify(cur)
}
