package core

import (
	"fmt"

	"icsdetect/internal/dataset"
)

// DynamicKConfig tunes the adaptive top-k controller. The paper lists
// dynamically adjusted k as future work (§IX: "we will design effective
// approaches to adjust the value of k dynamically based on previous
// predictions"); this implementation realizes it with a feedback rule on
// the recent alert rate of the time-series level.
type DynamicKConfig struct {
	// MinK and MaxK bound the adjustment range around the trained k.
	MinK, MaxK int
	// TargetRate is the acceptable fraction of time-series alerts among
	// recently scored packages (≈ the θ of the k-selection rule).
	TargetRate float64
	// Window is the number of recent scored packages the rate is computed
	// over.
	Window int
}

// DefaultDynamicKConfig derives bounds from the trained k.
func DefaultDynamicKConfig(trainedK int) DynamicKConfig {
	minK := trainedK - 2
	if minK < 1 {
		minK = 1
	}
	return DynamicKConfig{
		MinK:       minK,
		MaxK:       trainedK + 4,
		TargetRate: 0.05,
		Window:     200,
	}
}

// Validate reports configuration errors.
func (c *DynamicKConfig) Validate() error {
	if c.MinK < 1 || c.MaxK < c.MinK {
		return fmt.Errorf("core: dynamic k bounds invalid [%d, %d]", c.MinK, c.MaxK)
	}
	if c.TargetRate <= 0 || c.TargetRate >= 1 {
		return fmt.Errorf("core: dynamic k target rate %g outside (0,1)", c.TargetRate)
	}
	if c.Window < 10 {
		return fmt.Errorf("core: dynamic k window %d too small", c.Window)
	}
	return nil
}

// DynamicSession wraps a Session with the adaptive-k controller: when the
// recent time-series alert rate exceeds the target, k grows (fewer false
// positives); when the rate falls well below target, k shrinks back toward
// the trained value (higher sensitivity).
type DynamicSession struct {
	inner *Session
	cfg   DynamicKConfig
	k     int

	// ring buffer of recent series-level verdicts (true = alert).
	recent []bool
	idx    int
	filled int
	alerts int
}

// NewDynamicSession starts an adaptive session in combined mode.
func (f *Framework) NewDynamicSession(cfg DynamicKConfig) (*DynamicSession, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DynamicSession{
		inner:  f.NewSession(),
		cfg:    cfg,
		k:      f.Series.K,
		recent: make([]bool, cfg.Window),
	}, nil
}

// K returns the current adaptive k.
func (s *DynamicSession) K() int { return s.k }

// Classify classifies the next package with the current k and updates the
// controller. Only packages that reach the time-series level influence the
// alert rate (Bloom-filter detections are independent of k).
func (s *DynamicSession) Classify(cur *dataset.Package) Verdict {
	// Temporarily install the adaptive k on the shared detector; Session
	// reads it on every classification.
	saved := s.inner.f.Series.K
	s.inner.f.Series.K = s.k
	v := s.inner.Classify(cur)
	s.inner.f.Series.K = saved

	if v.Level != LevelPackage {
		s.observe(v.Level == LevelTimeSeries)
	}
	return v
}

func (s *DynamicSession) observe(alert bool) {
	if s.filled == len(s.recent) {
		if s.recent[s.idx] {
			s.alerts--
		}
	} else {
		s.filled++
	}
	s.recent[s.idx] = alert
	if alert {
		s.alerts++
	}
	s.idx = (s.idx + 1) % len(s.recent)

	if s.filled < len(s.recent)/2 {
		return // not enough evidence yet
	}
	rate := float64(s.alerts) / float64(s.filled)
	switch {
	case rate > s.cfg.TargetRate*1.5 && s.k < s.cfg.MaxK:
		s.k++
		s.decayHalf()
	case rate < s.cfg.TargetRate/2 && s.k > s.cfg.MinK:
		s.k--
		s.decayHalf()
	}
}

// decayHalf forgets half the window after a k change so the controller
// re-estimates the rate at the new operating point instead of oscillating.
func (s *DynamicSession) decayHalf() {
	drop := s.filled / 2
	for i := 0; i < drop; i++ {
		pos := (s.idx + i) % len(s.recent)
		if s.recent[pos] {
			s.alerts--
			s.recent[pos] = false
		}
	}
	s.filled -= drop
	if s.filled < 0 {
		s.filled = 0
	}
}
