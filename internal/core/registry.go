package core

import (
	"fmt"
	"sort"
	"sync"

	"icsdetect/internal/dataset"
)

// Built-in stage kinds. Additional kinds (the promoted Table IV baselines)
// register from internal/baselines; embedding programs can register their
// own.
const (
	// StageBloom is the Bloom-filter package content level F_p.
	StageBloom = "bloom"
	// StageLSTM is the stacked-LSTM time-series level F_t.
	StageLSTM = "lstm"
	// StageLSTMDynamic is the time-series level with the adaptive top-k
	// controller (§IX future work, realized in DynamicSeriesStage).
	StageLSTMDynamic = "lstm-dynamic"
)

// StageModel is an opaque trained model for one registered stage kind,
// stored in Framework.Extra and consumed by the kind's Build factory.
type StageModel any

// StageFactory wires one stage kind into the framework: how to build the
// streaming stage from a trained framework, how to train its model from
// the dataset path, and how to persist that model inside the framework's
// save format.
type StageFactory struct {
	// Build constructs the stage against a trained framework. Built-in
	// kinds read Framework fields; promoted kinds read Framework.Extra.
	Build func(fw *Framework, spec StageSpec) (StageDetector, error)
	// Train fits the kind's stage model from an attack-free split (nil
	// for kinds whose model is part of the framework proper).
	Train func(fw *Framework, split *dataset.Split, seed uint64) (StageModel, error)
	// Encode/Decode serialize the stage model for Framework.Save/Load
	// (nil for kinds without a separate model). Encodings must be
	// deterministic: Fingerprint mixes them.
	Encode func(m StageModel) ([]byte, error)
	Decode func(b []byte) (StageModel, error)
	// F32 declares that Build honors StageSpec.Precision == PrecisionF32:
	// the kind either runs on float32 kernels or is precision-independent
	// (the Bloom membership test). Stacks requesting the f32 tier fail
	// validation when any level leaves this false.
	F32 bool
}

var (
	stageMu       sync.RWMutex
	stageRegistry = make(map[string]StageFactory)
)

// RegisterStage adds a stage kind to the registry. It panics on an empty
// or malformed kind, a nil Build, a trainable kind without a persistence
// codec, or a duplicate registration — all programming errors in an init
// path. Kind names are restricted to lowercase letters, digits, '-' and
// '_': they appear verbatim in the -levels flag grammar (',' and ':' are
// separators) and in the v2 golden-verdict evidence column (':' and ';'
// are separators, fields are whitespace-split), so a name containing any
// of those would corrupt both formats. Kinds whose Train produces a stage
// model must also provide Encode/Decode: Framework.Save and Fingerprint
// pin stage models through those codecs, and a trainable kind without
// them would save un-round-trippably and fingerprint-collide.
func RegisterStage(kind string, f StageFactory) {
	if kind == "" || f.Build == nil {
		panic("core: RegisterStage needs a kind and a Build factory")
	}
	for _, r := range kind {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			panic(fmt.Sprintf("core: stage kind %q: only [a-z0-9_-] allowed", kind))
		}
	}
	if f.Train != nil && (f.Encode == nil || f.Decode == nil) {
		panic(fmt.Sprintf("core: stage kind %q trains a model but has no Encode/Decode codec", kind))
	}
	stageMu.Lock()
	defer stageMu.Unlock()
	if _, dup := stageRegistry[kind]; dup {
		panic(fmt.Sprintf("core: stage kind %q registered twice", kind))
	}
	stageRegistry[kind] = f
}

// StageKinds lists the registered stage kinds, sorted.
func StageKinds() []string {
	stageMu.RLock()
	defer stageMu.RUnlock()
	kinds := make([]string, 0, len(stageRegistry))
	for k := range stageRegistry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func stageFactory(kind string) (StageFactory, bool) {
	stageMu.RLock()
	defer stageMu.RUnlock()
	f, ok := stageRegistry[kind]
	return f, ok
}

func init() {
	RegisterStage(StageBloom, StageFactory{
		Build: func(fw *Framework, _ StageSpec) (StageDetector, error) {
			if fw.Package == nil {
				return nil, fmt.Errorf("framework has no package detector")
			}
			return &PackageStage{Detector: fw.Package}, nil
		},
		// The membership test is integer-only: precision-independent.
		F32: true,
	})
	RegisterStage(StageLSTM, StageFactory{
		Build: func(fw *Framework, spec StageSpec) (StageDetector, error) {
			if fw.Series == nil {
				return nil, fmt.Errorf("framework has no time-series detector")
			}
			return &SeriesStage{DB: fw.DB, Detector: fw.Series, Input: fw.Input,
				F32: spec.Precision == PrecisionF32}, nil
		},
		F32: true,
	})
	RegisterStage(StageLSTMDynamic, StageFactory{
		Build: func(fw *Framework, spec StageSpec) (StageDetector, error) {
			if fw.Series == nil {
				return nil, fmt.Errorf("framework has no time-series detector")
			}
			return &DynamicSeriesStage{
				Series: &SeriesStage{DB: fw.DB, Detector: fw.Series, Input: fw.Input,
					F32: spec.Precision == PrecisionF32},
				Cfg: DefaultDynamicKConfig(fw.Series.K),
			}, nil
		},
		F32: true,
	})
}
