package core

import (
	"fmt"

	"icsdetect/internal/mathx"
	"icsdetect/internal/signature"
)

// InputEncoder lays out the LSTM input vector: the one-hot encoding of every
// element of the discretized feature vector c(t), concatenated, plus the
// extra noise-flag feature c_{o+1} of §V-A-3 as the final element.
type InputEncoder struct {
	// Buckets holds the per-feature bucket counts (including out-of-range
	// buckets).
	Buckets []int
	// Offsets[i] is the start of feature i's one-hot block.
	Offsets []int
	// Dim is the total input dimensionality (Σ buckets + 1).
	Dim int
}

// NewInputEncoder builds the layout for an encoder's bucket structure.
func NewInputEncoder(enc *signature.Encoder) *InputEncoder {
	buckets := enc.Buckets()
	offsets := make([]int, len(buckets))
	total := 0
	for i, b := range buckets {
		offsets[i] = total
		total += b
	}
	return &InputEncoder{Buckets: buckets, Offsets: offsets, Dim: total + 1}
}

// Encode writes the one-hot encoding of c (with the noise flag) into a new
// vector.
func (e *InputEncoder) Encode(c []int, noisy bool) []float64 {
	x := make([]float64, e.Dim)
	e.EncodeInto(x, c, noisy)
	return x
}

// EncodeInto writes the encoding into dst (len must be Dim). Out-of-range
// bucket indices are clamped defensively.
func (e *InputEncoder) EncodeInto(dst []float64, c []int, noisy bool) {
	if len(dst) != e.Dim {
		panic(fmt.Sprintf("core: encode into vector of %d, want %d", len(dst), e.Dim))
	}
	if len(c) != len(e.Buckets) {
		panic(fmt.Sprintf("core: discretized vector has %d features, want %d", len(c), len(e.Buckets)))
	}
	mathx.Fill(dst, 0)
	for i, v := range c {
		if v < 0 {
			v = 0
		}
		if v >= e.Buckets[i] {
			v = e.Buckets[i] - 1
		}
		dst[e.Offsets[i]+v] = 1
	}
	if noisy {
		dst[e.Dim-1] = 1
	}
}

// EncodeSparse appends the active column indices of c's one-hot encoding
// (exactly one per feature block, plus the noise flag when set) to dst[:0]
// and returns the result — the sparse form of EncodeInto, with the same
// defensive clamping. Block offsets ascend and the noise flag is the last
// column, so the indices are strictly ascending, as the one-hot kernels
// require. Reusing dst keeps the streaming hot path allocation-free.
func (e *InputEncoder) EncodeSparse(dst []int, c []int, noisy bool) []int {
	if len(c) != len(e.Buckets) {
		panic(fmt.Sprintf("core: discretized vector has %d features, want %d", len(c), len(e.Buckets)))
	}
	dst = dst[:0]
	for i, v := range c {
		if v < 0 {
			v = 0
		}
		if v >= e.Buckets[i] {
			v = e.Buckets[i] - 1
		}
		dst = append(dst, e.Offsets[i]+v)
	}
	if noisy {
		dst = append(dst, e.Dim-1)
	}
	return dst
}

// NoiseInjector implements the probabilistic-noise strategy of §V-A-3:
// when a package is used as time-series input during training, with
// probability p = λ/(λ+#(s)) its discretized vector is corrupted in
// d ∈ [1, MaxFeatures] randomly chosen features and its noise flag is set.
type NoiseInjector struct {
	// Lambda reflects the expected anomaly frequency (paper: 10 for the
	// experiments, lower in production).
	Lambda float64
	// MaxFeatures is l, the maximum number of corrupted features (l < o).
	MaxFeatures int

	db  *signature.DB
	enc *InputEncoder
	rng *mathx.RNG
}

// NewNoiseInjector constructs an injector.
func NewNoiseInjector(lambda float64, maxFeatures int, db *signature.DB, enc *InputEncoder, seed uint64) (*NoiseInjector, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("core: negative lambda %g", lambda)
	}
	if maxFeatures < 1 || maxFeatures >= len(enc.Buckets) {
		return nil, fmt.Errorf("core: noise MaxFeatures must be in [1, %d), got %d",
			len(enc.Buckets), maxFeatures)
	}
	return &NoiseInjector{
		Lambda:      lambda,
		MaxFeatures: maxFeatures,
		db:          db,
		enc:         enc,
		rng:         mathx.NewRNG(seed),
	}, nil
}

// Apply decides whether to corrupt the package with signature sig and
// discretized vector c. It returns the (possibly corrupted) vector and
// whether noise was applied. The input slice is never mutated.
func (n *NoiseInjector) Apply(c []int, sig string) ([]int, bool) {
	if n.Lambda == 0 {
		return c, false
	}
	p := n.Lambda / (n.Lambda + float64(n.db.Count(sig)))
	if !n.rng.Bernoulli(p) {
		return c, false
	}
	out := append([]int(nil), c...)
	d := 1 + n.rng.Intn(n.MaxFeatures)
	perm := n.rng.Perm(len(out))
	for _, fi := range perm[:d] {
		buckets := n.enc.Buckets[fi]
		if buckets < 2 {
			continue
		}
		// Change to a different value, including possibly the out-of-range
		// bucket — noisy inputs mimic anomalies with unseen feature values.
		nv := n.rng.Intn(buckets - 1)
		if nv >= out[fi] {
			nv++
		}
		out[fi] = nv
	}
	return out, true
}
