package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
	"icsdetect/internal/signature"
)

// Mode selects which of the paper's detector levels an evaluation session
// applies; the paper's framework is ModeCombined, the others support
// ablation. Mode is the legacy two-level API — it maps onto the composable
// stack machinery through SpecForMode, and arbitrary level combinations
// are described by StackSpec instead.
type Mode int

// Evaluation modes.
const (
	ModeCombined Mode = iota + 1
	ModePackageOnly
	ModeSeriesOnly
)

// Framework is the trained multi-level anomaly detection framework: the
// paper's two built-in levels (§IV Bloom package detector, §V stacked LSTM
// time-series detector) plus any promoted extra-level models, composed
// into a detection stack by NewStack.
type Framework struct {
	Encoder *signature.Encoder
	DB      *signature.DB
	Package *PackageDetector
	Series  *TimeSeriesDetector
	Input   *InputEncoder
	// Extra holds the trained models of registered non-built-in levels
	// (see RegisterStage and TrainStages), keyed by stage kind.
	Extra map[string]StageModel
}

// Session classifies one package stream against a detection stack: a thin
// per-stream state object holding the previous package (for the interval
// feature) and one StageState per level. All mutable state lives here —
// the Framework, the Stack and its stages stay read-only during
// classification — so each goroutine of a concurrent deployment owns its
// sessions without locking. Packages — whatever their verdict — feed the
// time-series input for the classification of future packages, with the
// noise flag set to the verdict (Fig. 3).
type Session struct {
	stack  *Stack
	states []StageState
	prev   *dataset.Package
	// cbuf and sigbuf are the reusable encoding buffers of the per-package
	// hot path: the discretized vector and the signature spelling are built
	// in place, and database signatures intern to their canonical string,
	// so classifying a normal package allocates nothing. cbuf is exposed to
	// the stages as PackageContext.C and stays valid only until this
	// session classifies its next package — stages that keep encoded input
	// across steps copy at Advance/Queue time.
	cbuf   []int
	sigbuf []byte
	// pcbuf, vbuf and rbuf are session-resident homes for the structs the
	// classify/advance loops hand to the stage interfaces by pointer. A
	// stack local passed as *PackageContext/*Verdict/*StageResult into an
	// interface method is forced to the heap by escape analysis — one
	// allocation per package (or per stage, for rbuf); fields of the
	// already-heap-allocated session cost nothing. Stages must not retain
	// the pointers past the call, which the StageDetector contract already
	// requires.
	pcbuf PackageContext
	vbuf  Verdict
	rbuf  StageResult
	// evbuf backs the per-verdict Evidence slice when the caller opted
	// into ReuseEvidence: evidence-recording stacks then classify without
	// the one allocation per package the fresh slice costs.
	evbuf         []LevelEvidence
	reuseEvidence bool
}

// ReuseEvidence opts the session into pooling the per-verdict Evidence
// slice: every verdict's Evidence aliases one session-owned buffer that
// the next ClassifyOnly overwrites. Callers that retain verdicts (or
// their Evidence) past the next classification must copy first — which is
// why fresh slices remain the default. Only evidence-recording stacks
// allocate evidence at all; for the rest this is a no-op.
func (s *Session) ReuseEvidence(on bool) {
	s.reuseEvidence = on
	if on && s.evbuf == nil {
		s.evbuf = make([]LevelEvidence, 0, len(s.stack.stages))
	}
}

// NewSession starts a classification session over the default two-level
// stack (bloom,lstm under first-hit fusion).
func (f *Framework) NewSession() *Session { return f.NewSessionMode(ModeCombined) }

// NewSessionMode starts a session with a legacy detector mode. Unknown
// modes fall back to the combined pipeline.
func (f *Framework) NewSessionMode(mode Mode) *Session {
	spec, err := SpecForMode(mode)
	if err != nil {
		spec = DefaultStackSpec()
	}
	sess, err := f.NewStackSession(spec)
	if err != nil {
		// The built-in levels always resolve on a trained framework; an
		// error here means the framework is structurally broken.
		panic(fmt.Sprintf("core: session over built-in stack: %v", err))
	}
	return sess
}

// NewStackSession starts a session over an arbitrary level stack.
func (f *Framework) NewStackSession(spec StackSpec) (*Session, error) {
	st, err := f.NewStack(spec)
	if err != nil {
		return nil, err
	}
	return st.NewSession(), nil
}

// Mode returns the legacy detector mode this session's stack corresponds
// to, or ModeCombined when the stack has no mode equivalent.
func (s *Session) Mode() Mode {
	spec := s.stack.spec
	if spec.fusion() == FusionFirstHit && len(spec.Stages) == 1 {
		switch spec.Stages[0].Kind {
		case StageBloom:
			return ModePackageOnly
		case StageLSTM:
			return ModeSeriesOnly
		}
	}
	return ModeCombined
}

// Stack returns the detection stack the session classifies against.
func (s *Session) Stack() *Stack { return s.stack }

// Classify classifies the next package of the stream and advances the
// session.
func (s *Session) Classify(cur *dataset.Package) Verdict {
	v, pc := s.ClassifyOnly(cur)
	s.Advance(pc, v)
	return v
}

// ClassifyOnly runs the Check half of the pipeline: it encodes the package
// and fuses the levels' opinions into a verdict under the stack's fusion
// policy (first-hit evaluates levels in order until one flags — Fig. 3:
// the Bloom filter short-circuits the time-series level, since an unknown
// signature can never be in S(k); majority and weighted fusion consult
// every level). Stream state does not move; the caller completes the step
// with Advance — or batches it across sessions with StackBatch.QueueAdvance
// — before classifying the next package of this stream.
func (s *Session) ClassifyOnly(cur *dataset.Package) (Verdict, PackageContext) {
	fw := s.stack.fw
	fw.Encoder.EncodeInto(s.cbuf, s.prev, cur)
	s.sigbuf = signature.AppendSignature(s.sigbuf[:0], s.cbuf)
	s.pcbuf = PackageContext{Prev: s.prev, Cur: cur, C: s.cbuf, Sig: fw.DB.Intern(s.sigbuf)}
	v := Verdict{Signature: s.pcbuf.Sig, Rank: -1}
	st := s.stack
	if st.evidence {
		if s.reuseEvidence {
			v.Evidence = s.evbuf[:0]
		} else {
			v.Evidence = make([]LevelEvidence, 0, len(st.stages))
		}
	}
	switch st.spec.fusion() {
	case FusionMajority, FusionWeighted:
		s.classifyVoting(&s.pcbuf, &v)
	default:
		s.classifyFirstHit(&s.pcbuf, &v)
	}
	return v, s.pcbuf
}

// classifyFirstHit evaluates levels in stack order until one flags the
// package; later levels are short-circuited and do not appear in the
// evidence.
func (s *Session) classifyFirstHit(pc *PackageContext, v *Verdict) {
	for i, stage := range s.stack.stages {
		s.rbuf = StageResult{Rank: -1}
		stage.Check(s.states[i], pc, &s.rbuf)
		if s.rbuf.Rank >= 0 {
			v.Rank = s.rbuf.Rank
		}
		if s.stack.evidence {
			v.Evidence = append(v.Evidence, evidenceOf(stage, s.rbuf))
		}
		if s.rbuf.Flagged {
			v.Anomaly = true
			v.Level = stage.Level()
			return
		}
	}
}

// classifyVoting evaluates every level and fuses their votes: strict
// majority of the scoring levels (FusionMajority) or a weighted-score
// threshold (FusionWeighted). Levels that abstain (unscored) join neither
// side. Verdict.Level is the first level that voted anomalous.
func (s *Session) classifyVoting(pc *PackageContext, v *Verdict) {
	var flaggedWeight, scoredWeight float64
	var flagged, scored int
	firstLevel := LevelNone
	for i, stage := range s.stack.stages {
		s.rbuf = StageResult{Rank: -1}
		stage.Check(s.states[i], pc, &s.rbuf)
		if s.rbuf.Rank >= 0 {
			v.Rank = s.rbuf.Rank
		}
		if s.stack.evidence {
			v.Evidence = append(v.Evidence, evidenceOf(stage, s.rbuf))
		}
		if !s.rbuf.Scored {
			continue
		}
		scored++
		scoredWeight += s.stack.weights[i]
		if s.rbuf.Flagged {
			flagged++
			flaggedWeight += s.stack.weights[i]
			if firstLevel == LevelNone {
				firstLevel = stage.Level()
			}
		}
	}
	var anomalous bool
	if s.stack.spec.fusion() == FusionMajority {
		anomalous = scored > 0 && 2*flagged > scored
	} else {
		anomalous = scoredWeight > 0 && flaggedWeight > s.stack.spec.threshold()*scoredWeight
	}
	if anomalous {
		v.Anomaly = true
		v.Level = firstLevel
	}
}

func evidenceOf(stage StageDetector, r StageResult) LevelEvidence {
	return LevelEvidence{
		Stage:   stage.Name(),
		Level:   stage.Level(),
		Scored:  r.Scored,
		Flagged: r.Flagged,
		Score:   r.Score,
		Rank:    r.Rank,
	}
}

// Advance feeds the classified package into every stage's stream state and
// completes the step that v closed.
func (s *Session) Advance(pc PackageContext, v Verdict) {
	// The loop hands the structs to the stage interfaces through the
	// session-resident copies — pointers to the parameters themselves would
	// escape and heap-allocate both on every call.
	s.pcbuf, s.vbuf = pc, v
	for i, stage := range s.stack.stages {
		stage.Advance(s.states[i], &s.pcbuf, &s.vbuf)
	}
	s.prev = pc.Cur
}

// Reset returns the session to its initial state. A reset session produces
// verdicts identical to a fresh one.
func (s *Session) Reset() {
	for _, st := range s.states {
		st.Reset()
	}
	s.prev = nil
}

// Evaluation is the outcome of running a framework over a labeled test set.
type Evaluation struct {
	Confusion metrics.Confusion
	Summary   metrics.Summary
	PerAttack *metrics.PerAttack
	// ByLevel counts detections per detector level.
	ByLevel map[Level]int
}

// Evaluate classifies every package of the test stream and scores the
// verdicts against ground truth (§VIII-B).
func (f *Framework) Evaluate(test []*dataset.Package, mode Mode) *Evaluation {
	spec, err := SpecForMode(mode)
	if err != nil {
		spec = DefaultStackSpec()
	}
	eval, everr := f.EvaluateStack(test, spec)
	if everr != nil {
		panic(fmt.Sprintf("core: evaluate over built-in stack: %v", everr))
	}
	return eval
}

// EvaluateStack classifies every package of the test stream through an
// arbitrary level stack and scores the verdicts against ground truth.
func (f *Framework) EvaluateStack(test []*dataset.Package, spec StackSpec) (*Evaluation, error) {
	sess, err := f.NewStackSession(spec)
	if err != nil {
		return nil, err
	}
	eval := &Evaluation{
		PerAttack: metrics.NewPerAttack(),
		ByLevel:   make(map[Level]int),
	}
	for _, p := range test {
		v := sess.Classify(p)
		eval.Confusion.Add(v.Anomaly, p.IsAttack())
		eval.PerAttack.Add(p.Label, v.Anomaly)
		if v.Anomaly {
			eval.ByLevel[v.Level]++
		}
	}
	eval.Summary = metrics.Summarize(&eval.Confusion)
	return eval, nil
}

// SetK overrides the top-k threshold (used by the Fig. 7 sweep over k).
func (f *Framework) SetK(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	f.Series.K = k
	return nil
}

// MemoryBytes reports the storage cost of the two built-in detection
// models (the paper reports 684 KB): the Bloom filter bit vector plus the
// LSTM parameters at 8 bytes each.
func (f *Framework) MemoryBytes() int {
	return f.Package.SizeBytes() + 8*f.Series.Model.NumParams()
}
