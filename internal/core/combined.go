package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// Mode selects which detector levels an evaluation session applies; the
// paper's framework is ModeCombined, the others support ablation.
type Mode int

// Evaluation modes.
const (
	ModeCombined Mode = iota + 1
	ModePackageOnly
	ModeSeriesOnly
)

// Framework is the trained two-level anomaly detection framework of §VI.
type Framework struct {
	Encoder *signature.Encoder
	DB      *signature.DB
	Package *PackageDetector
	Series  *TimeSeriesDetector
	Input   *InputEncoder
}

// Session classifies a package stream against a framework, maintaining the
// recurrent model state and the previous package (for the interval
// feature). Packages — whatever their verdict — feed the time-series input
// for the classification of future packages, with the noise flag set to the
// verdict (Fig. 3).
type Session struct {
	f     *Framework
	mode  Mode
	state *nn.State
	prev  *dataset.Package
	probs []float64
	// scored reports whether probs holds a valid prediction (false before
	// the first package has been fed).
	scored bool
}

// NewSession starts a classification session in combined mode.
func (f *Framework) NewSession() *Session { return f.NewSessionMode(ModeCombined) }

// NewSessionMode starts a session with an explicit detector mode.
func (f *Framework) NewSessionMode(mode Mode) *Session {
	return &Session{
		f:     f,
		mode:  mode,
		state: f.Series.Model.NewState(),
		probs: make([]float64, f.Series.Model.Classes()),
	}
}

// Classify classifies the next package of the stream and advances the
// session.
func (s *Session) Classify(cur *dataset.Package) Verdict {
	f := s.f
	c := f.Encoder.Encode(s.prev, cur)
	sig := signature.Signature(c)
	v := Verdict{Signature: sig, Rank: -1}

	// Package content level (Fig. 3: checked first; a hit short-circuits
	// the time-series level since an unknown signature can never be in
	// S(k)).
	if s.mode != ModeSeriesOnly && f.Package.Anomalous(sig) {
		v.Anomaly = true
		v.Level = LevelPackage
	}

	// Time-series level, only for packages that passed the Bloom filter.
	if !v.Anomaly && s.mode != ModePackageOnly && s.scored {
		class, ok := f.DB.ClassOf(sig)
		if !ok {
			// The signature passed the Bloom filter (a filter false
			// positive) but is not in the database, so it cannot be among
			// the top-k predicted signatures.
			v.Anomaly = true
			v.Level = LevelTimeSeries
		} else {
			v.Rank = rankOf(s.probs, class)
			if v.Rank >= f.Series.K {
				v.Anomaly = true
				v.Level = LevelTimeSeries
			}
		}
	}

	// Feed the package into the model for the classification of future
	// packages; the extra feature carries this package's verdict (§V-A-3:
	// "the additional feature of any packages classified as anomalies will
	// be set to 1").
	f.Series.Model.Step(s.state, f.Input.Encode(c, v.Anomaly), s.probs)
	s.scored = true
	s.prev = cur
	return v
}

// Reset returns the session to its initial state.
func (s *Session) Reset() {
	s.state.Reset()
	s.prev = nil
	s.scored = false
	for i := range s.probs {
		s.probs[i] = 0
	}
}

// Evaluation is the outcome of running a framework over a labeled test set.
type Evaluation struct {
	Confusion metrics.Confusion
	Summary   metrics.Summary
	PerAttack *metrics.PerAttack
	// ByLevel counts detections per detector level.
	ByLevel map[Level]int
}

// Evaluate classifies every package of the test stream and scores the
// verdicts against ground truth (§VIII-B).
func (f *Framework) Evaluate(test []*dataset.Package, mode Mode) *Evaluation {
	sess := f.NewSessionMode(mode)
	eval := &Evaluation{
		PerAttack: metrics.NewPerAttack(),
		ByLevel:   make(map[Level]int),
	}
	for _, p := range test {
		v := sess.Classify(p)
		eval.Confusion.Add(v.Anomaly, p.IsAttack())
		eval.PerAttack.Add(p.Label, v.Anomaly)
		if v.Anomaly {
			eval.ByLevel[v.Level]++
		}
	}
	eval.Summary = metrics.Summarize(&eval.Confusion)
	return eval
}

// SetK overrides the top-k threshold (used by the Fig. 7 sweep over k).
func (f *Framework) SetK(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	f.Series.K = k
	return nil
}

// MemoryBytes reports the storage cost of the two detection models (the
// paper reports 684 KB): the Bloom filter bit vector plus the LSTM
// parameters at 8 bytes each.
func (f *Framework) MemoryBytes() int {
	return f.Package.SizeBytes() + 8*f.Series.Model.NumParams()
}
