package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
	"icsdetect/internal/signature"
)

// Mode selects which detector levels an evaluation session applies; the
// paper's framework is ModeCombined, the others support ablation.
type Mode int

// Evaluation modes.
const (
	ModeCombined Mode = iota + 1
	ModePackageOnly
	ModeSeriesOnly
)

// Framework is the trained two-level anomaly detection framework of §VI.
type Framework struct {
	Encoder *signature.Encoder
	DB      *signature.DB
	Package *PackageDetector
	Series  *TimeSeriesDetector
	Input   *InputEncoder
}

// Session classifies one package stream against a framework: a thin
// per-stream state object holding the previous package (for the interval
// feature) and one StageState per pipeline stage. All mutable state lives
// here — the Framework and its stages stay read-only during classification
// — so each goroutine of a concurrent deployment owns its sessions without
// locking. Packages — whatever their verdict — feed the time-series input
// for the classification of future packages, with the noise flag set to the
// verdict (Fig. 3).
type Session struct {
	f      *Framework
	mode   Mode
	stages []StageDetector
	states []StageState
	prev   *dataset.Package
}

// NewSession starts a classification session in combined mode.
func (f *Framework) NewSession() *Session { return f.NewSessionMode(ModeCombined) }

// NewSessionMode starts a session with an explicit detector mode. Unknown
// modes fall back to the combined pipeline.
func (f *Framework) NewSessionMode(mode Mode) *Session {
	stages, err := f.Stages(mode)
	if err != nil {
		mode = ModeCombined
		stages, _ = f.Stages(mode)
	}
	states := make([]StageState, len(stages))
	for i, st := range stages {
		states[i] = st.NewState()
	}
	return &Session{f: f, mode: mode, stages: stages, states: states}
}

// Mode returns the session's detector mode.
func (s *Session) Mode() Mode { return s.mode }

// Classify classifies the next package of the stream and advances the
// session.
func (s *Session) Classify(cur *dataset.Package) Verdict {
	v, pc := s.ClassifyOnly(cur)
	s.Advance(pc, v)
	return v
}

// ClassifyOnly runs the Check half of the pipeline: it encodes the package
// and evaluates each stage in order until one flags it (Fig. 3: the Bloom
// filter is checked first and short-circuits the time-series level, since
// an unknown signature can never be in S(k)). Stream state does not move;
// the caller completes the step with Advance — or batches it across
// sessions with SeriesBatch.Queue — before classifying the next package of
// this stream.
func (s *Session) ClassifyOnly(cur *dataset.Package) (Verdict, PackageContext) {
	c := s.f.Encoder.Encode(s.prev, cur)
	pc := PackageContext{Prev: s.prev, Cur: cur, C: c, Sig: signature.Signature(c)}
	v := Verdict{Signature: pc.Sig, Rank: -1}
	for i, stage := range s.stages {
		stage.Check(s.states[i], &pc, &v)
		if v.Anomaly {
			break
		}
	}
	return v, pc
}

// Advance feeds the classified package into every stage's stream state and
// completes the step that v closed.
func (s *Session) Advance(pc PackageContext, v Verdict) {
	for i, stage := range s.stages {
		stage.Advance(s.states[i], &pc, &v)
	}
	s.prev = pc.Cur
}

// Reset returns the session to its initial state. A reset session produces
// verdicts identical to a fresh one.
func (s *Session) Reset() {
	for _, st := range s.states {
		st.Reset()
	}
	s.prev = nil
}

// Evaluation is the outcome of running a framework over a labeled test set.
type Evaluation struct {
	Confusion metrics.Confusion
	Summary   metrics.Summary
	PerAttack *metrics.PerAttack
	// ByLevel counts detections per detector level.
	ByLevel map[Level]int
}

// Evaluate classifies every package of the test stream and scores the
// verdicts against ground truth (§VIII-B).
func (f *Framework) Evaluate(test []*dataset.Package, mode Mode) *Evaluation {
	sess := f.NewSessionMode(mode)
	eval := &Evaluation{
		PerAttack: metrics.NewPerAttack(),
		ByLevel:   make(map[Level]int),
	}
	for _, p := range test {
		v := sess.Classify(p)
		eval.Confusion.Add(v.Anomaly, p.IsAttack())
		eval.PerAttack.Add(p.Label, v.Anomaly)
		if v.Anomaly {
			eval.ByLevel[v.Level]++
		}
	}
	eval.Summary = metrics.Summarize(&eval.Confusion)
	return eval
}

// SetK overrides the top-k threshold (used by the Fig. 7 sweep over k).
func (f *Framework) SetK(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	f.Series.K = k
	return nil
}

// MemoryBytes reports the storage cost of the two detection models (the
// paper reports 684 KB): the Bloom filter bit vector plus the LSTM
// parameters at 8 bytes each.
func (f *Framework) MemoryBytes() int {
	return f.Package.SizeBytes() + 8*f.Series.Model.NumParams()
}
