package core

import (
	"math"
	"testing"
	"testing/quick"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/signature"
)

// fakeEncoder builds a minimal signature encoder fixture via real fitting
// on a tiny synthetic fragment.
func fixtureEncoder(t *testing.T) (*signature.Encoder, *signature.DB, []dataset.Fragment) {
	t.Helper()
	rng := mathx.NewRNG(1)
	var frag dataset.Fragment
	tm := 0.0
	for i := 0; i < 400; i++ {
		tm += 0.05 + rng.Float64()*0.1
		frag = append(frag, &dataset.Package{
			Address: 4, Function: float64(16 + (i%2)*49),
			Length: 29 - float64(i%2)*2, CmdResponse: float64(1 - i%2),
			Setpoint: 8, Gain: 0.45, ResetRate: 0.15, Deadband: 0.05,
			CycleTime: 0.25, Rate: 0.02, SystemMode: 2,
			Pressure: 8 + rng.NormScaled(0, 0.3), Time: tm,
		})
	}
	frags := []dataset.Fragment{frag}
	enc, err := signature.FitEncoder(frags, signature.Granularity{
		IntervalClusters: 2, CRCClusters: 1,
		PressureBins: 4, SetpointBins: 2, PIDClusters: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return enc, signature.BuildDB(enc, frags), frags
}

func TestInputEncoderLayout(t *testing.T) {
	enc, _, frags := fixtureEncoder(t)
	ie := NewInputEncoder(enc)
	var total int
	for _, b := range ie.Buckets {
		total += b
	}
	if ie.Dim != total+1 {
		t.Fatalf("Dim = %d, want %d", ie.Dim, total+1)
	}
	c := enc.Encode(nil, frags[0][0])
	x := ie.Encode(c, false)
	// Exactly one hot bit per feature, noise bit clear.
	var ones int
	for _, v := range x {
		if v == 1 {
			ones++
		} else if v != 0 {
			t.Fatalf("non-binary input value %v", v)
		}
	}
	if ones != len(ie.Buckets) {
		t.Errorf("%d hot bits, want %d", ones, len(ie.Buckets))
	}
	if x[ie.Dim-1] != 0 {
		t.Error("noise bit set unexpectedly")
	}
	noisy := ie.Encode(c, true)
	if noisy[ie.Dim-1] != 1 {
		t.Error("noise bit not set")
	}
}

func TestNoiseInjectorProbability(t *testing.T) {
	enc, db, frags := fixtureEncoder(t)
	ie := NewInputEncoder(enc)
	ni, err := NewNoiseInjector(10, 3, db, ie, 99)
	if err != nil {
		t.Fatal(err)
	}
	c := enc.Encode(nil, frags[0][0])
	sig := signature.Signature(c)
	count := db.Count(sig)
	wantP := 10.0 / (10.0 + float64(count))

	noisy := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		out, applied := ni.Apply(c, sig)
		if applied {
			noisy++
			// Noise must change at least one feature and never mutate the
			// input slice.
			changed := 0
			for j := range c {
				if out[j] != c[j] {
					changed++
				}
			}
			if changed == 0 {
				t.Fatal("noise applied but no feature changed")
			}
			if changed > 3 {
				t.Fatalf("noise changed %d features, max 3", changed)
			}
		}
	}
	got := float64(noisy) / trials
	if math.Abs(got-wantP) > 0.02 {
		t.Errorf("noise rate %.4f, want %.4f (count=%d)", got, wantP, count)
	}
}

func TestNoiseInjectorRareSignaturesNoisier(t *testing.T) {
	enc, db, _ := fixtureEncoder(t)
	ie := NewInputEncoder(enc)
	ni, err := NewNoiseInjector(10, 2, db, ie, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := make([]int, enc.Dim())
	common := db.List[0]            // most frequent
	rare := db.List[len(db.List)-1] // least frequent
	noisyCommon, noisyRare := 0, 0
	for i := 0; i < 5000; i++ {
		if _, ok := ni.Apply(c, common); ok {
			noisyCommon++
		}
		if _, ok := ni.Apply(c, rare); ok {
			noisyRare++
		}
	}
	if noisyRare <= noisyCommon {
		t.Errorf("rare signature noise %d not above common %d", noisyRare, noisyCommon)
	}
}

func TestNoiseInjectorValidation(t *testing.T) {
	enc, db, _ := fixtureEncoder(t)
	ie := NewInputEncoder(enc)
	if _, err := NewNoiseInjector(-1, 2, db, ie, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewNoiseInjector(1, 0, db, ie, 1); err == nil {
		t.Error("zero max features accepted")
	}
	if _, err := NewNoiseInjector(1, len(ie.Buckets), db, ie, 1); err == nil {
		t.Error("l = o accepted (paper requires l < o)")
	}
	// λ=0 disables noise entirely.
	ni, err := NewNoiseInjector(0, 2, db, ie, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, applied := ni.Apply(make([]int, enc.Dim()), db.List[0]); applied {
		t.Error("lambda=0 still injected noise")
	}
}

func TestRankOf(t *testing.T) {
	probs := []float64{0.1, 0.4, 0.2, 0.3}
	wants := []int{3, 0, 2, 1}
	for class, want := range wants {
		if got := rankOf(probs, class); got != want {
			t.Errorf("rankOf(class %d) = %d, want %d", class, got, want)
		}
	}
	// Ties break toward the earlier index.
	tied := []float64{0.5, 0.5}
	if rankOf(tied, 0) != 0 || rankOf(tied, 1) != 1 {
		t.Error("tie-break not deterministic")
	}
}

// TestRankOfConsistentWithTopK: rank < k ⇔ class ∈ TopK(probs, k).
func TestRankOfConsistentWithTopK(t *testing.T) {
	rng := mathx.NewRNG(8)
	f := func() bool {
		probs := make([]float64, 10)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		k := 1 + rng.Intn(9)
		top := mathx.TopK(probs, k)
		inTop := make(map[int]bool, k)
		for _, idx := range top {
			inTop[idx] = true
		}
		for class := range probs {
			if (rankOf(probs, class) < k) != inTop[class] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackageDetectorNoFalseNegatives(t *testing.T) {
	_, db, _ := fixtureEncoder(t)
	det, err := NewPackageDetector(db, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range db.List {
		if det.Anomalous(sig) {
			t.Fatalf("known-normal signature %q flagged", sig)
		}
	}
	if !det.Anomalous("999:999:999") {
		t.Log("unknown signature passed (allowed Bloom false positive)")
	}
}

func TestBuildSequencesAlignment(t *testing.T) {
	enc, db, frags := fixtureEncoder(t)
	ie := NewInputEncoder(enc)
	seqs := BuildSequences(enc, ie, db, frags, nil)
	if len(seqs) != 1 {
		t.Fatalf("sequences = %d", len(seqs))
	}
	seq := seqs[0]
	if len(seq.Inputs) != len(frags[0])-1 {
		t.Fatalf("inputs = %d, want %d", len(seq.Inputs), len(frags[0])-1)
	}
	// Target t must be the class of package t+1's signature.
	cs := enc.EncodeFragment(frags[0])
	for tIdx := range seq.Targets {
		wantSig := signature.Signature(cs[tIdx+1])
		wantClass, ok := db.ClassOf(wantSig)
		if !ok {
			t.Fatalf("training signature missing from db")
		}
		if seq.Targets[tIdx] != wantClass {
			t.Fatalf("target %d = %d, want %d", tIdx, seq.Targets[tIdx], wantClass)
		}
	}
	// Short fragments are skipped.
	short := []dataset.Fragment{frags[0][:1]}
	if got := BuildSequences(enc, ie, db, short, nil); len(got) != 0 {
		t.Errorf("1-package fragment produced %d sequences", len(got))
	}
}

func TestSetKValidation(t *testing.T) {
	fw := &Framework{Series: &TimeSeriesDetector{K: 4}}
	if err := fw.SetK(0); err == nil {
		t.Error("k=0 accepted")
	}
	if err := fw.SetK(7); err != nil || fw.Series.K != 7 {
		t.Errorf("SetK failed: %v", err)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(&dataset.Split{}, DefaultConfig()); err == nil {
		t.Error("empty split accepted")
	}
	_, _, frags := fixtureEncoder(t)
	split := &dataset.Split{Train: frags, Validation: frags}
	bad := DefaultConfig()
	bad.BloomFP = 2
	if _, _, err := Train(split, bad); err == nil {
		t.Error("BloomFP >= 1 accepted")
	}
	bad = DefaultConfig()
	bad.ThetaSeries = 0
	if _, _, err := Train(split, bad); err == nil {
		t.Error("theta = 0 accepted")
	}
}
