package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"icsdetect/internal/bloom"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// persisted is the on-disk form of a trained framework. The Bloom filter
// uses its own binary format; everything else is gob. Extra carries the
// promoted stage models, each serialized by its kind's registered codec —
// old snapshots simply have no Extra field, and old readers ignore it, so
// the format is compatible in both directions.
type persisted struct {
	Encoder *signature.Encoder
	DB      *signature.DB
	Bloom   []byte
	Model   *nn.Classifier
	K       int
	Input   *InputEncoder
	Extra   map[string][]byte
}

// Save serializes the trained framework, including any promoted stage
// models whose kinds provide a codec.
func (f *Framework) Save(w io.Writer) error {
	var bf bytes.Buffer
	if _, err := f.Package.Filter.WriteTo(&bf); err != nil {
		return fmt.Errorf("core: save bloom filter: %w", err)
	}
	p := persisted{
		Encoder: f.Encoder,
		DB:      f.DB,
		Bloom:   bf.Bytes(),
		Model:   f.Series.Model,
		K:       f.Series.K,
		Input:   f.Input,
	}
	for kind, m := range f.Extra {
		fac, ok := stageFactory(kind)
		if !ok || fac.Encode == nil {
			return fmt.Errorf("core: save framework: stage kind %q has no codec", kind)
		}
		b, err := fac.Encode(m)
		if err != nil {
			return fmt.Errorf("core: save stage %s: %w", kind, err)
		}
		if p.Extra == nil {
			p.Extra = make(map[string][]byte, len(f.Extra))
		}
		p.Extra[kind] = b
	}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("core: save framework: %w", err)
	}
	return nil
}

// Load deserializes a framework saved with Save.
func Load(r io.Reader) (*Framework, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: load framework: %w", err)
	}
	if p.Encoder == nil || p.DB == nil || p.Model == nil || p.Input == nil {
		return nil, fmt.Errorf("core: loaded framework is incomplete")
	}
	if p.K < 1 {
		return nil, fmt.Errorf("core: loaded framework has invalid k=%d", p.K)
	}
	var filter bloom.Filter
	if _, err := filter.ReadFrom(bytes.NewReader(p.Bloom)); err != nil {
		return nil, fmt.Errorf("core: load bloom filter: %w", err)
	}
	fw := &Framework{
		Encoder: p.Encoder,
		DB:      p.DB,
		Package: &PackageDetector{Filter: &filter},
		Series:  &TimeSeriesDetector{Model: p.Model, K: p.K},
		Input:   p.Input,
	}
	for kind, b := range p.Extra {
		fac, ok := stageFactory(kind)
		if !ok || fac.Decode == nil {
			return nil, fmt.Errorf("core: load framework: stage kind %q is not registered "+
				"(import the package that provides it)", kind)
		}
		m, err := fac.Decode(b)
		if err != nil {
			return nil, fmt.Errorf("core: load stage %s: %w", kind, err)
		}
		if fw.Extra == nil {
			fw.Extra = make(map[string]StageModel, len(p.Extra))
		}
		fw.Extra[kind] = m
	}
	return fw, nil
}
