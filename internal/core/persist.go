package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"icsdetect/internal/bloom"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// persisted is the on-disk form of a trained framework. The Bloom filter
// uses its own binary format; everything else is gob.
type persisted struct {
	Encoder *signature.Encoder
	DB      *signature.DB
	Bloom   []byte
	Model   *nn.Classifier
	K       int
	Input   *InputEncoder
}

// Save serializes the trained framework.
func (f *Framework) Save(w io.Writer) error {
	var bf bytes.Buffer
	if _, err := f.Package.Filter.WriteTo(&bf); err != nil {
		return fmt.Errorf("core: save bloom filter: %w", err)
	}
	p := persisted{
		Encoder: f.Encoder,
		DB:      f.DB,
		Bloom:   bf.Bytes(),
		Model:   f.Series.Model,
		K:       f.Series.K,
		Input:   f.Input,
	}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("core: save framework: %w", err)
	}
	return nil
}

// Load deserializes a framework saved with Save.
func Load(r io.Reader) (*Framework, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: load framework: %w", err)
	}
	if p.Encoder == nil || p.DB == nil || p.Model == nil || p.Input == nil {
		return nil, fmt.Errorf("core: loaded framework is incomplete")
	}
	if p.K < 1 {
		return nil, fmt.Errorf("core: loaded framework has invalid k=%d", p.K)
	}
	var filter bloom.Filter
	if _, err := filter.ReadFrom(bytes.NewReader(p.Bloom)); err != nil {
		return nil, fmt.Errorf("core: load bloom filter: %w", err)
	}
	return &Framework{
		Encoder: p.Encoder,
		DB:      p.DB,
		Package: &PackageDetector{Filter: &filter},
		Series:  &TimeSeriesDetector{Model: p.Model, K: p.K},
		Input:   p.Input,
	}, nil
}
