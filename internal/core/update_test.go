package core_test

import (
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
)

func TestIncrementalUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("update test uses the trained integration fixture")
	}
	fw, report, _ := trainSmallFramework(t, true)
	oldSize := fw.DB.Size()
	oldClasses := fw.Series.Model.Classes()

	// Fresh attack-free traffic from a different seed: new operating
	// regimes introduce new signatures.
	freshDS, err := gaspipeline.GenerateNormal(3000, 777)
	if err != nil {
		t.Fatal(err)
	}
	freshSplit, err := dataset.MakeSplit(freshDS, dataset.SplitConfig{
		TrainFrac: 0.9, ValidationFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultUpdateConfig()
	cfg.Fit.Epochs = 2
	cfg.Fit.BatchSize = 4
	if err := fw.Update(freshSplit.Train, cfg); err != nil {
		t.Fatal(err)
	}

	if fw.DB.Size() < oldSize {
		t.Fatalf("database shrank: %d -> %d", oldSize, fw.DB.Size())
	}
	if fw.Series.Model.Classes() != fw.DB.Size() && fw.DB.Size() > oldClasses {
		t.Fatalf("classifier classes %d != db size %d", fw.Series.Model.Classes(), fw.DB.Size())
	}
	// Existing class indices must be stable.
	for i, sig := range fw.DB.List[:oldSize] {
		if idx, ok := fw.DB.ClassOf(sig); !ok || idx != i {
			t.Fatalf("class index of %q moved to %d", sig, idx)
		}
	}
	// All fresh signatures must now pass the package level.
	misses := 0
	total := 0
	for _, frag := range freshSplit.Train {
		var prev *dataset.Package
		for _, p := range frag {
			exp := fw.Explain(prev, p)
			total++
			if exp.Verdict.Anomaly {
				misses++
			}
			prev = p
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d absorbed packages still flagged at package level", misses, total)
	}

	// The updated framework still detects attacks.
	attackDS, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(3000, 778))
	if err != nil {
		t.Fatal(err)
	}
	sess := fw.NewSession()
	detected := 0
	for _, p := range attackDS.Packages {
		if v := sess.Classify(p); v.Anomaly && p.IsAttack() {
			detected++
		}
	}
	if detected == 0 {
		t.Error("updated framework detects nothing")
	}
	_ = report
}

func TestUpdateValidation(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	fw, _, split := trainSmallFramework(t, true)
	if err := fw.Update(nil, core.DefaultUpdateConfig()); err == nil {
		t.Error("empty update accepted")
	}
	// Attack-bearing fragments are rejected.
	bad := dataset.Fragment{{Label: dataset.DOS}}
	if err := fw.Update([]dataset.Fragment{bad}, core.DefaultUpdateConfig()); err == nil {
		t.Error("attack fragment accepted")
	}
	cfg := core.DefaultUpdateConfig()
	cfg.BloomFP = 0
	if err := fw.Update(split.Validation, cfg); err == nil {
		t.Error("invalid BloomFP accepted")
	}
}
