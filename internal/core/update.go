package core

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

// UpdateConfig controls incremental retraining. The paper's §VIII-D lists
// "collect more training data" as the first mitigation for hard-to-detect
// physical-process attacks; Update realizes it without a full retrain: the
// signature database and Bloom filter absorb the new normal signatures (at
// the frozen discretization) and the LSTM fine-tunes for a few epochs with
// the enlarged class space.
type UpdateConfig struct {
	// Fit configures the fine-tuning optimizer loop (fewer epochs and a
	// lower learning rate than initial training are typical).
	Fit nn.TrainConfig
	// UseNoise keeps probabilistic-noise injection during fine-tuning.
	UseNoise bool
	// Lambda and NoiseMaxFeatures mirror Config.
	Lambda           float64
	NoiseMaxFeatures int
	// BloomFP sizes the rebuilt Bloom filter.
	BloomFP float64
	// Seed drives the noise stream and shuffling.
	Seed uint64
}

// DefaultUpdateConfig returns gentle fine-tuning settings.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{
		Fit: nn.TrainConfig{
			Epochs: 4, Window: 32, BatchSize: 8, LR: 5e-4, ClipNorm: 5,
		},
		UseNoise:         true,
		Lambda:           10,
		NoiseMaxFeatures: 3,
		BloomFP:          0.005,
		Seed:             1,
	}
}

// Update absorbs newly observed attack-free fragments into the framework:
// the signature database gains the new signatures (keeping existing class
// indices stable), the Bloom filter is rebuilt, the classifier's output
// layer grows for new classes, and the model fine-tunes on the new
// fragments. The discretization is frozen — changing it would invalidate
// the entire class space; retrain from scratch when the granularity must
// move.
func (f *Framework) Update(fresh []dataset.Fragment, cfg UpdateConfig) error {
	if len(fresh) == 0 {
		return fmt.Errorf("core: update needs at least one fragment")
	}
	for _, frag := range fresh {
		for _, p := range frag {
			if p.IsAttack() {
				return fmt.Errorf("core: update fragments must be attack-free")
			}
		}
	}
	if cfg.BloomFP <= 0 || cfg.BloomFP >= 1 {
		return fmt.Errorf("core: BloomFP must be in (0,1), got %g", cfg.BloomFP)
	}

	// 1. Extend the signature database with stable class indices: existing
	// signatures keep their position, new ones append in frequency order.
	counts := make(map[string]int, len(f.DB.Counts))
	for s, c := range f.DB.Counts {
		counts[s] = c
	}
	total := f.DB.Total
	type newSig struct {
		sig   string
		count int
	}
	newCounts := make(map[string]int)
	for _, frag := range fresh {
		var prev *dataset.Package
		for _, p := range frag {
			sig := signature.Signature(f.Encoder.Encode(prev, p))
			counts[sig]++
			total++
			if _, known := f.DB.Index[sig]; !known {
				newCounts[sig]++
			}
			prev = p
		}
	}
	var added []newSig
	for s, c := range newCounts {
		added = append(added, newSig{s, c})
	}
	// Deterministic order: by descending novelty count, then lexicographic.
	for i := 0; i < len(added); i++ {
		for j := i + 1; j < len(added); j++ {
			if added[j].count > added[i].count ||
				(added[j].count == added[i].count && added[j].sig < added[i].sig) {
				added[i], added[j] = added[j], added[i]
			}
		}
	}
	list := append(append([]string(nil), f.DB.List...), nil...)
	index := make(map[string]int, len(list)+len(added))
	for i, s := range list {
		index[s] = i
	}
	for _, ns := range added {
		index[ns.sig] = len(list)
		list = append(list, ns.sig)
	}
	f.DB.Counts = counts
	f.DB.List = list
	f.DB.Index = index
	f.DB.Total = total

	// 2. Rebuild the Bloom filter over the enlarged database.
	pkg, err := NewPackageDetector(f.DB, cfg.BloomFP)
	if err != nil {
		return err
	}
	f.Package = pkg

	// 3. Grow the classifier's output layer for the new classes.
	if n := f.DB.Size(); n > f.Series.Model.Classes() {
		if err := growOutput(f.Series.Model, n, cfg.Seed); err != nil {
			return err
		}
	}

	// 4. Fine-tune on the fresh fragments.
	var noise *NoiseInjector
	if cfg.UseNoise {
		noise, err = NewNoiseInjector(cfg.Lambda, cfg.NoiseMaxFeatures, f.DB, f.Input, cfg.Seed^0x5EED)
		if err != nil {
			return err
		}
	}
	seqs := BuildSequences(f.Encoder, f.Input, f.DB, fresh, noise)
	if len(seqs) == 0 {
		return nil // fragments too short to train on; DB update still applies
	}
	fit := cfg.Fit
	fit.Seed = cfg.Seed ^ 0x9D2C
	if _, err := nn.Train(f.Series.Model, seqs, fit); err != nil {
		return err
	}
	return nil
}

// growOutput widens the dense head to `classes` outputs, preserving learned
// weights for existing classes and Xavier-initializing the new rows.
func growOutput(model *nn.Classifier, classes int, seed uint64) error {
	return model.GrowClasses(classes, seed)
}
