package core_test

import (
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

func TestSessionBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("session test uses the trained integration fixture")
	}
	fw, _, split := trainSmallFramework(t, true)

	t.Run("ResetReproducesVerdicts", func(t *testing.T) {
		sess := fw.NewSession()
		first := make([]bool, 0, 200)
		for _, p := range split.Test[:200] {
			first = append(first, sess.Classify(p).Anomaly)
		}
		sess.Reset()
		for i, p := range split.Test[:200] {
			if got := sess.Classify(p).Anomaly; got != first[i] {
				t.Fatalf("verdict %d changed after reset", i)
			}
		}
	})

	t.Run("FirstPackageNeverSeriesFlagged", func(t *testing.T) {
		sess := fw.NewSession()
		v := sess.Classify(split.Test[0])
		if v.Level == core.LevelTimeSeries {
			t.Error("time-series level fired without any history")
		}
		if v.Rank != -1 && v.Level == core.LevelPackage {
			t.Error("package-level verdict carries a rank")
		}
	})

	t.Run("ModesAreConsistent", func(t *testing.T) {
		pkgEval := fw.Evaluate(split.Test, core.ModePackageOnly)
		combEval := fw.Evaluate(split.Test, core.ModeCombined)
		// The combined framework flags everything the package level flags
		// (Fig. 3: the Bloom filter is checked first and short-circuits).
		if combEval.Confusion.TP+combEval.Confusion.FP <
			pkgEval.Confusion.TP+pkgEval.Confusion.FP {
			t.Errorf("combined raised fewer alerts (%d) than package level alone (%d)",
				combEval.Confusion.TP+combEval.Confusion.FP,
				pkgEval.Confusion.TP+pkgEval.Confusion.FP)
		}
		// Level attribution matches the mode.
		if pkgEval.ByLevel[core.LevelTimeSeries] != 0 {
			t.Error("package-only mode attributed detections to the series level")
		}
		serEval := fw.Evaluate(split.Test, core.ModeSeriesOnly)
		if serEval.ByLevel[core.LevelPackage] != 0 {
			t.Error("series-only mode attributed detections to the package level")
		}
	})

	t.Run("MFCISignaturesCaughtAtPackageLevel", func(t *testing.T) {
		sess := fw.NewSession()
		for _, p := range split.Test {
			v := sess.Classify(p)
			if p.Label == dataset.MFCI && v.Anomaly && v.Level != core.LevelPackage {
				// Not fatal — but MFCI function codes are not in the
				// signature DB, so the Bloom level should claim them.
				t.Errorf("MFCI package detected at %v level", v.Level)
			}
		}
	})
}

func TestEndToEndNoNoiseAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	fw, report, split := trainSmallFramework(t, false)
	eval := fw.Evaluate(split.Test, core.ModeCombined)
	t.Logf("no-noise: %v k=%d", eval.Summary, report.ChosenK)
	if eval.Summary.F1 < 0.4 {
		t.Errorf("no-noise framework F1 = %.3f, want >= 0.4", eval.Summary.F1)
	}
}
