package core_test

import (
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

func TestSessionBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("session test uses the trained integration fixture")
	}
	fw, _, split := trainSmallFramework(t, true)

	t.Run("ResetReproducesVerdicts", func(t *testing.T) {
		sess := fw.NewSession()
		first := make([]bool, 0, 200)
		for _, p := range split.Test[:200] {
			first = append(first, sess.Classify(p).Anomaly)
		}
		sess.Reset()
		for i, p := range split.Test[:200] {
			if got := sess.Classify(p).Anomaly; got != first[i] {
				t.Fatalf("verdict %d changed after reset", i)
			}
		}
	})

	t.Run("ResetMatchesFreshSession", func(t *testing.T) {
		// A reused session must be indistinguishable from a fresh one:
		// every field of every verdict, not just the anomaly bit.
		for _, mode := range []core.Mode{core.ModeCombined, core.ModePackageOnly, core.ModeSeriesOnly} {
			reused := fw.NewSessionMode(mode)
			for _, p := range split.Test[:150] {
				reused.Classify(p)
			}
			reused.Reset()
			fresh := fw.NewSessionMode(mode)
			for i, p := range split.Test[:150] {
				got, want := reused.Classify(p), fresh.Classify(p)
				if !got.Equal(want) {
					t.Fatalf("mode %d verdict %d: reset session %+v, fresh session %+v",
						mode, i, got, want)
				}
			}
		}
	})

	t.Run("FirstPackageNeverSeriesFlagged", func(t *testing.T) {
		sess := fw.NewSession()
		v := sess.Classify(split.Test[0])
		if v.Level == core.LevelTimeSeries {
			t.Error("time-series level fired without any history")
		}
		if v.Rank != -1 && v.Level == core.LevelPackage {
			t.Error("package-level verdict carries a rank")
		}
	})

	t.Run("ModesAreConsistent", func(t *testing.T) {
		pkgEval := fw.Evaluate(split.Test, core.ModePackageOnly)
		combEval := fw.Evaluate(split.Test, core.ModeCombined)
		// The combined framework flags everything the package level flags
		// (Fig. 3: the Bloom filter is checked first and short-circuits).
		if combEval.Confusion.TP+combEval.Confusion.FP <
			pkgEval.Confusion.TP+pkgEval.Confusion.FP {
			t.Errorf("combined raised fewer alerts (%d) than package level alone (%d)",
				combEval.Confusion.TP+combEval.Confusion.FP,
				pkgEval.Confusion.TP+pkgEval.Confusion.FP)
		}
		// Level attribution matches the mode.
		if pkgEval.ByLevel[core.LevelTimeSeries] != 0 {
			t.Error("package-only mode attributed detections to the series level")
		}
		serEval := fw.Evaluate(split.Test, core.ModeSeriesOnly)
		if serEval.ByLevel[core.LevelPackage] != 0 {
			t.Error("series-only mode attributed detections to the package level")
		}
	})

	t.Run("PackageOnlyAblationPath", func(t *testing.T) {
		// The package-only pipeline never consults the LSTM: no
		// time-series levels, no ranks, and identical verdicts to the
		// combined pipeline's package level on the same stream.
		pkgOnly := fw.NewSessionMode(core.ModePackageOnly)
		combined := fw.NewSessionMode(core.ModeCombined)
		for i, p := range split.Test[:300] {
			pv, cv := pkgOnly.Classify(p), combined.Classify(p)
			if pv.Level == core.LevelTimeSeries {
				t.Fatal("package-only session produced a time-series verdict")
			}
			if pv.Rank != -1 {
				t.Fatalf("package-only verdict %d carries rank %d", i, pv.Rank)
			}
			if pv.Anomaly != (cv.Anomaly && cv.Level == core.LevelPackage) {
				t.Fatalf("package %d: package-only anomaly=%v, combined %+v", i, pv.Anomaly, cv)
			}
		}
	})

	t.Run("SeriesOnlyAblationPath", func(t *testing.T) {
		// The series-only pipeline never fires the Bloom level, still
		// never scores the first package, and ranks every scored package
		// whose signature is in the database.
		sess := fw.NewSessionMode(core.ModeSeriesOnly)
		for i, p := range split.Test[:300] {
			v := sess.Classify(p)
			if v.Level == core.LevelPackage {
				t.Fatal("series-only session produced a package-level verdict")
			}
			if i == 0 {
				if v.Anomaly {
					t.Fatal("series-only session flagged the first package of the stream")
				}
				continue
			}
			if _, known := fw.DB.ClassOf(v.Signature); known && v.Rank < 0 {
				t.Fatalf("package %d: known signature not ranked: %+v", i, v)
			}
		}
	})

	t.Run("StagePipelinesPerMode", func(t *testing.T) {
		cases := []struct {
			mode   core.Mode
			levels []core.Level
		}{
			{core.ModeCombined, []core.Level{core.LevelPackage, core.LevelTimeSeries}},
			{core.ModePackageOnly, []core.Level{core.LevelPackage}},
			{core.ModeSeriesOnly, []core.Level{core.LevelTimeSeries}},
		}
		for _, c := range cases {
			stages, err := fw.Stages(c.mode)
			if err != nil {
				t.Fatalf("Stages(%d): %v", c.mode, err)
			}
			if len(stages) != len(c.levels) {
				t.Fatalf("Stages(%d) has %d stages, want %d", c.mode, len(stages), len(c.levels))
			}
			for i, st := range stages {
				if st.Level() != c.levels[i] {
					t.Errorf("Stages(%d)[%d] level = %v, want %v", c.mode, i, st.Level(), c.levels[i])
				}
				if st.Name() == "" {
					t.Errorf("Stages(%d)[%d] has no name", c.mode, i)
				}
			}
		}
		if _, err := fw.Stages(core.Mode(42)); err == nil {
			t.Error("Stages accepted an unknown mode")
		}
	})

	t.Run("ReuseEvidencePooling", func(t *testing.T) {
		// Opting into evidence reuse must change only the slice's identity,
		// never its contents: verdicts match a fresh-slice session field for
		// field, and the pooled session hands out the same backing buffer
		// every package.
		spec := core.DefaultStackSpec()
		spec.RecordEvidence = true
		pooled, err := fw.NewStackSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		pooled.ReuseEvidence(true)
		fresh, err := fw.NewStackSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		var prevBuf *core.LevelEvidence
		for i, p := range split.Test[:300] {
			pv, fv := pooled.Classify(p), fresh.Classify(p)
			if !pv.Equal(fv) {
				t.Fatalf("package %d: pooled verdict %+v, fresh %+v", i, pv, fv)
			}
			if len(pv.Evidence) == 0 {
				t.Fatalf("package %d: evidence-recording stack produced no evidence", i)
			}
			if prevBuf != nil && prevBuf != &pv.Evidence[0] {
				t.Fatalf("package %d: pooled session allocated a new evidence buffer", i)
			}
			prevBuf = &pv.Evidence[0]
		}
	})

	t.Run("F32SessionResetMatchesFresh", func(t *testing.T) {
		// The f32 tier honors the same session contract as f64: a reset
		// session is indistinguishable from a fresh one.
		spec := core.DefaultStackSpec()
		spec.Precision = core.PrecisionF32
		reused, err := fw.NewStackSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range split.Test[:150] {
			reused.Classify(p)
		}
		reused.Reset()
		freshSess, err := fw.NewStackSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range split.Test[:150] {
			got, want := reused.Classify(p), freshSess.Classify(p)
			if !got.Equal(want) {
				t.Fatalf("f32 verdict %d: reset session %+v, fresh session %+v", i, got, want)
			}
		}
	})

	t.Run("MFCISignaturesCaughtAtPackageLevel", func(t *testing.T) {
		sess := fw.NewSession()
		for _, p := range split.Test {
			v := sess.Classify(p)
			if p.Label == dataset.MFCI && v.Anomaly && v.Level != core.LevelPackage {
				// Not fatal — but MFCI function codes are not in the
				// signature DB, so the Bloom level should claim them.
				t.Errorf("MFCI package detected at %v level", v.Level)
			}
		}
	})
}

func TestEndToEndNoNoiseAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	fw, report, split := trainSmallFramework(t, false)
	eval := fw.Evaluate(split.Test, core.ModeCombined)
	t.Logf("no-noise: %v k=%d", eval.Summary, report.ChosenK)
	if eval.Summary.F1 < 0.4 {
		t.Errorf("no-noise framework F1 = %.3f, want >= 0.4", eval.Summary.F1)
	}
}
