package core

import (
	"fmt"
	"strconv"
	"strings"

	"icsdetect/internal/dataset"
)

// Fusion is the verdict fusion policy of a detection stack: how the
// per-level Check outcomes combine into one Verdict.
type Fusion int

// Fusion policies.
const (
	// FusionFirstHit is the paper's Fig. 3 policy: levels run in stack
	// order until one flags the package; later levels are short-circuited.
	FusionFirstHit Fusion = iota + 1
	// FusionMajority runs every level and flags the package when a strict
	// majority of the levels that scored it vote anomalous.
	FusionMajority
	// FusionWeighted runs every level and flags the package when the
	// summed weight of anomalous votes exceeds Threshold times the summed
	// weight of scoring levels.
	FusionWeighted
)

// String names the fusion policy as accepted by ParseFusion.
func (f Fusion) String() string {
	switch f {
	case FusionFirstHit:
		return "first-hit"
	case FusionMajority:
		return "majority"
	case FusionWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("Fusion(%d)", int(f))
	}
}

// ParseFusion parses a fusion policy name. The empty string means the
// default first-hit policy.
func ParseFusion(s string) (Fusion, error) {
	switch s {
	case "", "first-hit":
		return FusionFirstHit, nil
	case "majority", "majority-vote":
		return FusionMajority, nil
	case "weighted", "weighted-score":
		return FusionWeighted, nil
	default:
		return 0, fmt.Errorf("core: unknown fusion policy %q (first-hit, majority or weighted)", s)
	}
}

// StageSpec describes one level of a detection stack.
type StageSpec struct {
	// Kind is the registered stage kind ("bloom", "lstm", "pca", …); see
	// RegisterStage and StageKinds.
	Kind string
	// Weight is the level's vote weight under weighted fusion (0 means 1).
	Weight float64
	// Precision is the numeric tier the level runs at. It is filled from
	// the stack-wide StackSpec.Precision when the stack is built; factories
	// read it to pick the kernel tier (zero means f64).
	Precision Precision
}

// StackSpec describes a detection stack: an ordered list of level
// descriptors plus the fusion policy that combines their votes. The zero
// value is not a valid spec; DefaultStackSpec returns the paper's
// two-level framework.
type StackSpec struct {
	// Stages are the levels, checked in order.
	Stages []StageSpec
	// Fusion is the verdict fusion policy (0 means FusionFirstHit).
	Fusion Fusion
	// Threshold tunes weighted fusion: anomalous when the flagged weight
	// exceeds Threshold × the scored weight (0 means 0.5).
	Threshold float64
	// RecordEvidence forces per-level evidence into every Verdict even for
	// stacks whose Level/Rank fields already capture it. Evidence is
	// always recorded for non-first-hit fusion and for stacks with levels
	// beyond the built-in two.
	RecordEvidence bool
	// Precision is the numeric tier the stack's kernel-backed levels run
	// at: PrecisionF64 (the reference, also the zero value) or the opt-in
	// PrecisionF32 inference tier. Every level of an f32 stack must have
	// an f32 path (Validate fails fast otherwise).
	Precision Precision
}

// DefaultStackSpec returns the paper's framework: the Bloom package level
// and the LSTM time-series level under first-hit fusion.
func DefaultStackSpec() StackSpec {
	return StackSpec{
		Stages: []StageSpec{{Kind: StageBloom}, {Kind: StageLSTM}},
		Fusion: FusionFirstHit,
	}
}

// SpecForMode maps a legacy ablation Mode onto its equivalent stack spec.
func SpecForMode(mode Mode) (StackSpec, error) {
	switch mode {
	case ModeCombined:
		return DefaultStackSpec(), nil
	case ModePackageOnly:
		return StackSpec{Stages: []StageSpec{{Kind: StageBloom}}, Fusion: FusionFirstHit}, nil
	case ModeSeriesOnly:
		return StackSpec{Stages: []StageSpec{{Kind: StageLSTM}}, Fusion: FusionFirstHit}, nil
	default:
		return StackSpec{}, fmt.Errorf("core: unknown mode %d", int(mode))
	}
}

// ParseStackSpec parses a stack from a comma-separated level list (each
// "kind" or "kind:weight") and a fusion policy name, the format of the
// command-line -levels / -fusion flags. Empty levels means the default
// two-level stack.
func ParseStackSpec(levels, fusion string) (StackSpec, error) {
	f, err := ParseFusion(fusion)
	if err != nil {
		return StackSpec{}, err
	}
	if levels == "" {
		spec := DefaultStackSpec()
		spec.Fusion = f
		return spec, nil
	}
	var spec StackSpec
	spec.Fusion = f
	for _, part := range strings.Split(levels, ",") {
		part = strings.TrimSpace(part)
		ss := StageSpec{Kind: part}
		if kind, w, ok := strings.Cut(part, ":"); ok {
			weight, err := strconv.ParseFloat(w, 64)
			if err != nil || weight <= 0 {
				return StackSpec{}, fmt.Errorf("core: bad level weight %q", part)
			}
			ss = StageSpec{Kind: kind, Weight: weight}
		}
		if _, ok := stageFactory(ss.Kind); !ok {
			return StackSpec{}, fmt.Errorf("core: unknown level %q (registered: %s)",
				ss.Kind, strings.Join(StageKinds(), ", "))
		}
		spec.Stages = append(spec.Stages, ss)
	}
	return spec, spec.Validate()
}

// ParseModeName parses the legacy -mode flag vocabulary of the icsdetect
// tools. The empty string means the combined two-level framework.
func ParseModeName(name string) (Mode, error) {
	switch name {
	case "", "combined":
		return ModeCombined, nil
	case "package":
		return ModePackageOnly, nil
	case "series":
		return ModeSeriesOnly, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q (combined, package or series)", name)
	}
}

// ResolveStackFlags resolves the shared -levels/-fusion/-mode flag triple
// of the icsdetect tools into a stack spec: an explicit -levels wins (with
// -fusion applying to it), otherwise the legacy -mode decides and a
// non-default -fusion without -levels is rejected — one implementation, so
// the tools cannot drift on flag semantics.
func ResolveStackFlags(levels, fusion, mode string) (StackSpec, error) {
	if levels != "" {
		return ParseStackSpec(levels, fusion)
	}
	if fusion != "" && fusion != "first-hit" {
		return StackSpec{}, fmt.Errorf("core: -fusion %s needs -levels", fusion)
	}
	m, err := ParseModeName(mode)
	if err != nil {
		return StackSpec{}, err
	}
	return SpecForMode(m)
}

// Validate reports structural spec errors (unknown kinds surface later,
// when the stack is built against a framework).
func (s StackSpec) Validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("core: stack spec has no levels")
	}
	switch s.Fusion {
	case 0, FusionFirstHit, FusionMajority, FusionWeighted:
	default:
		return fmt.Errorf("core: unknown fusion policy %d", int(s.Fusion))
	}
	if s.Threshold < 0 {
		// A negative threshold would flag packages with zero anomalous
		// votes (Anomaly true, Level none) — never a coherent verdict.
		return fmt.Errorf("core: negative fusion threshold %g", s.Threshold)
	}
	for _, ss := range s.Stages {
		if ss.Kind == "" {
			return fmt.Errorf("core: stack spec has an unnamed level")
		}
		if ss.Weight < 0 {
			return fmt.Errorf("core: level %s has negative weight %g", ss.Kind, ss.Weight)
		}
	}
	return s.validatePrecision()
}

// String renders the spec in the -levels/-fusion flag syntax.
func (s StackSpec) String() string {
	var b strings.Builder
	for i, ss := range s.Stages {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ss.Kind)
		if ss.Weight != 0 && ss.Weight != 1 {
			fmt.Fprintf(&b, ":%g", ss.Weight)
		}
	}
	b.WriteByte('/')
	b.WriteString(s.fusion().String())
	if s.precision() != PrecisionF64 {
		b.WriteByte('/')
		b.WriteString(s.precision().String())
	}
	return b.String()
}

func (s StackSpec) fusion() Fusion {
	if s.Fusion == 0 {
		return FusionFirstHit
	}
	return s.Fusion
}

func (s StackSpec) threshold() float64 {
	if s.Threshold == 0 {
		return 0.5
	}
	return s.Threshold
}

// builtin reports whether a stage kind belongs to the paper's original
// two-level framework, whose verdicts are fully described by the v1
// Level/Rank fields.
func builtinKind(kind string) bool { return kind == StageBloom || kind == StageLSTM }

// recordEvidence decides whether sessions over this stack attach
// per-level evidence to every verdict.
func (s StackSpec) recordEvidence() bool {
	if s.RecordEvidence || s.fusion() != FusionFirstHit {
		return true
	}
	for _, ss := range s.Stages {
		if !builtinKind(ss.Kind) {
			return true
		}
	}
	return false
}

// Stack is a detection stack bound to a trained framework: the stage
// descriptors of a StackSpec resolved into StageDetector values. A Stack
// is immutable and safe for concurrent use; all per-stream mutability
// lives in the Sessions it creates.
type Stack struct {
	fw       *Framework
	spec     StackSpec
	stages   []StageDetector
	weights  []float64
	evidence bool
}

// NewStack resolves a spec against the framework's trained models. Levels
// beyond the built-in two need their stage models trained first (see
// TrainStages); a missing model is reported here, by kind.
func (f *Framework) NewStack(spec StackSpec) (*Stack, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	stages := make([]StageDetector, len(spec.Stages))
	for i, ss := range spec.Stages {
		// Thread the stack-wide numeric tier down to the factory.
		ss.Precision = spec.precision()
		fac, ok := stageFactory(ss.Kind)
		if !ok {
			return nil, fmt.Errorf("core: unknown level %q (registered: %s)",
				ss.Kind, strings.Join(StageKinds(), ", "))
		}
		st, err := fac.Build(f, ss)
		if err != nil {
			return nil, fmt.Errorf("core: level %s: %w", ss.Kind, err)
		}
		stages[i] = st
	}
	return NewStackFromStages(f, spec, stages)
}

// NewStackFromStages builds a stack from explicit stage values instead of
// the registry — the hook for custom or instrumented levels (stage
// wrappers that time or log the inner stage). spec supplies the fusion
// policy and weights and must have one StageSpec per stage.
func NewStackFromStages(f *Framework, spec StackSpec, stages []StageDetector) (*Stack, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(stages) != len(spec.Stages) {
		return nil, fmt.Errorf("core: %d stages for %d level specs", len(stages), len(spec.Stages))
	}
	st := &Stack{
		fw:       f,
		spec:     spec,
		stages:   stages,
		weights:  make([]float64, len(stages)),
		evidence: spec.recordEvidence(),
	}
	for i, ss := range spec.Stages {
		w := ss.Weight
		if w == 0 {
			w = 1
		}
		st.weights[i] = w
	}
	return st, nil
}

// Spec returns the stack's descriptor.
func (st *Stack) Spec() StackSpec { return st.spec }

// Stages returns the resolved stage values, in stack order.
func (st *Stack) Stages() []StageDetector { return st.stages }

// NewSession starts a classification session over this stack.
func (st *Stack) NewSession() *Session {
	states := make([]StageState, len(st.stages))
	for i, s := range st.stages {
		states[i] = s.NewState()
	}
	return &Session{
		stack:  st,
		states: states,
		cbuf:   make([]int, st.fw.Encoder.Dim()),
		sigbuf: make([]byte, 0, 3*st.fw.Encoder.Dim()),
	}
}

// TrainStages fits the stage models the spec needs beyond the framework's
// built-in two levels, from the same attack-free split the framework
// trained on. Models already present are kept; built-in levels (bloom,
// lstm) are always part of the framework and train in Train.
func (f *Framework) TrainStages(spec StackSpec, split *dataset.Split, seed uint64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, ss := range spec.Stages {
		fac, ok := stageFactory(ss.Kind)
		if !ok {
			return fmt.Errorf("core: unknown level %q (registered: %s)",
				ss.Kind, strings.Join(StageKinds(), ", "))
		}
		if fac.Train == nil {
			continue
		}
		if _, done := f.Extra[ss.Kind]; done {
			continue
		}
		m, err := fac.Train(f, split, seed)
		if err != nil {
			return fmt.Errorf("core: train level %s: %w", ss.Kind, err)
		}
		if f.Extra == nil {
			f.Extra = make(map[string]StageModel)
		}
		f.Extra[ss.Kind] = m
	}
	return nil
}

// MissingStages lists the spec's levels whose trained models are absent
// from the framework (the ones TrainStages would fit).
func (f *Framework) MissingStages(spec StackSpec) []string {
	var missing []string
	for _, ss := range spec.Stages {
		fac, ok := stageFactory(ss.Kind)
		if !ok || fac.Train == nil {
			continue
		}
		if _, done := f.Extra[ss.Kind]; !done {
			missing = append(missing, ss.Kind)
		}
	}
	return missing
}
