package core

import (
	"bytes"
	"fmt"
	"math"
	"sort"
)

// Fingerprint returns a stable 64-bit hex digest of everything that
// determines this framework's verdicts: the discretizer shapes, the
// signature class space, the Bloom filter bits, the top-k threshold and
// every LSTM/dense parameter bit. Two frameworks with equal fingerprints
// classify every package stream identically, so recorded traces and golden
// verdict files embed the fingerprint to pin the model they were produced
// against (a conformance run rejects a trace/model mismatch instead of
// reporting spurious verdict drift).
//
// The digest is FNV-1a over a canonical serialization; it is identical
// across processes, architectures and kernel paths (SIMD or scalar), unlike
// a hash of the gob snapshot, whose map encodings are order-dependent.
func (f *Framework) Fingerprint() string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mixBytes := func(b []byte) {
		mix(uint64(len(b)))
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}

	// Discretization shape.
	mix(uint64(f.Encoder.Dim()))
	for _, fe := range f.Encoder.Features {
		mix(uint64(fe.Kind))
		mix(uint64(fe.Disc.Buckets()))
	}
	// Class space: the ordered signature list.
	mix(uint64(f.DB.Size()))
	for _, sig := range f.DB.List {
		mixBytes([]byte(sig))
	}
	// Package level: the exact filter bits (the filter's own canonical
	// binary serialization).
	var bf bytes.Buffer
	if _, err := f.Package.Filter.WriteTo(&bf); err == nil {
		mixBytes(bf.Bytes())
	}
	// Time-series level: k, the input layout and every parameter bit in
	// canonical order.
	mix(uint64(f.Series.K))
	mix(uint64(f.Input.Dim))
	for _, p := range f.Series.Model.Params() {
		mixBytes([]byte(p.Name))
		mix(uint64(len(p.Data)))
		for _, v := range p.Data {
			mix(math.Float64bits(v))
		}
	}
	// Promoted stage models, in sorted kind order via their deterministic
	// registered encodings. A framework without extra levels mixes nothing
	// here, so two-level fingerprints are unchanged from before the stack
	// refactor (the committed golden corpora stay pinned).
	if len(f.Extra) > 0 {
		kinds := make([]string, 0, len(f.Extra))
		for kind := range f.Extra {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			mixBytes([]byte(kind))
			// RegisterStage guarantees trainable kinds carry codecs; an
			// Encode failure here means the model is unserializable, so
			// mix a loud marker rather than silently fingerprinting it
			// like an absent model (Save would fail on it anyway).
			fac, ok := stageFactory(kind)
			if !ok || fac.Encode == nil {
				mixBytes([]byte("!no-codec"))
				continue
			}
			b, err := fac.Encode(f.Extra[kind])
			if err != nil {
				mixBytes([]byte("!encode-error:" + err.Error()))
				continue
			}
			mixBytes(b)
		}
	}
	return fmt.Sprintf("%016x", h)
}
