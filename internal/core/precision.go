package core

import (
	"fmt"
	"sort"
	"strings"
)

// Precision selects the numeric tier a detection stack's kernel-backed
// levels run at. The default f64 tier is the reference: its verdicts are
// the golden corpora and never change. The opt-in f32 tier runs the
// time-series level on the frozen float32 inference snapshot
// (nn.InferModel32) with f32 SIMD kernels at twice the lane width;
// within f32 the scalar, AVX2 and AVX-512 kernels and the sequential and
// batched paths are all bitwise-identical, and the conformance suite
// gates f32 against the f64 goldens at the verdict level.
type Precision string

// Precisions.
const (
	// PrecisionF64 is the float64 reference tier (the default).
	PrecisionF64 Precision = "f64"
	// PrecisionF32 is the float32 inference tier.
	PrecisionF32 Precision = "f32"
)

// ParsePrecision parses a precision name as accepted by the tools'
// -precision flag. The empty string means the default f64 tier.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64", "double":
		return PrecisionF64, nil
	case "f32", "float32", "single":
		return PrecisionF32, nil
	default:
		return "", fmt.Errorf("core: unknown precision %q (f64 or f32)", s)
	}
}

// norm maps the zero value onto the default tier.
func (p Precision) norm() Precision {
	if p == "" {
		return PrecisionF64
	}
	return p
}

// String names the precision as accepted by ParsePrecision.
func (p Precision) String() string { return string(p.norm()) }

// precision returns the spec's numeric tier with the zero value
// defaulted, like fusion/threshold.
func (s StackSpec) precision() Precision { return s.Precision.norm() }

// WithPrecision applies a -precision flag value to a resolved spec and
// fail-fast validates the result: an unknown name, or an f32 stack
// containing a level without an f32 kernel path, errors here — at
// startup, listing the supported set — rather than at first package.
func (s StackSpec) WithPrecision(name string) (StackSpec, error) {
	p, err := ParsePrecision(name)
	if err != nil {
		return StackSpec{}, err
	}
	s.Precision = p
	return s, s.Validate()
}

// F32StageKinds lists the registered stage kinds with a float32 kernel
// path, sorted — the supported set named by precision validation errors.
func F32StageKinds() []string {
	stageMu.RLock()
	defer stageMu.RUnlock()
	var kinds []string
	for k, f := range stageRegistry {
		if f.F32 {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	return kinds
}

// validatePrecision is the precision leg of StackSpec.Validate: the tier
// must be known and, for f32, every registered level must declare an f32
// path. Unregistered kinds pass here and surface in NewStack, exactly
// like the base validation.
func (s StackSpec) validatePrecision() error {
	switch s.Precision {
	case "", PrecisionF64:
		return nil
	case PrecisionF32:
	default:
		return fmt.Errorf("core: unknown precision %q (f64 or f32)", string(s.Precision))
	}
	for _, ss := range s.Stages {
		fac, ok := stageFactory(ss.Kind)
		if !ok {
			continue
		}
		if !fac.F32 {
			return fmt.Errorf("core: level %q has no f32 path (f32-capable: %s)",
				ss.Kind, strings.Join(F32StageKinds(), ", "))
		}
	}
	return nil
}

// rankOf32 is rankOf over the f32 logits of the float32 inference tier:
// the 0-based rank of class, ties broken toward earlier indices with
// exactly the f64 rule, so the two tiers' top-k boundaries differ only
// where the logits themselves round apart.
func rankOf32(probs []float32, class int) int {
	p := probs[class]
	rank := 0
	for i, v := range probs {
		if v > p || (v == p && i < class) {
			rank++
		}
	}
	return rank
}
