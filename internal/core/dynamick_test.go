package core_test

import (
	"testing"

	"icsdetect/internal/core"
)

func TestDynamicKConfigValidation(t *testing.T) {
	bad := []core.DynamicKConfig{
		{MinK: 0, MaxK: 5, TargetRate: 0.05, Window: 100},
		{MinK: 5, MaxK: 2, TargetRate: 0.05, Window: 100},
		{MinK: 1, MaxK: 5, TargetRate: 0, Window: 100},
		{MinK: 1, MaxK: 5, TargetRate: 1.5, Window: 100},
		{MinK: 1, MaxK: 5, TargetRate: 0.05, Window: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := core.DefaultDynamicKConfig(4)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if good.MinK < 1 || good.MaxK <= good.MinK {
		t.Errorf("default bounds broken: %+v", good)
	}
}

func TestDynamicSession(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic session test uses the trained integration fixture")
	}
	fw, report, split := trainSmallFramework(t, true)

	cfg := core.DefaultDynamicKConfig(report.ChosenK)
	sess, err := fw.NewDynamicSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.K() != report.ChosenK {
		t.Fatalf("initial k = %d, want %d", sess.K(), report.ChosenK)
	}

	var alerts int
	for _, p := range split.Test {
		if sess.Classify(p).Anomaly {
			alerts++
		}
		if k := sess.K(); k < cfg.MinK || k > cfg.MaxK {
			t.Fatalf("adaptive k %d escaped [%d, %d]", k, cfg.MinK, cfg.MaxK)
		}
	}
	if alerts == 0 {
		t.Error("dynamic session raised no alerts on attack-laden traffic")
	}
	// The trained framework's k must be untouched afterwards.
	if fw.Series.K != report.ChosenK {
		t.Errorf("dynamic session leaked k=%d into the framework", fw.Series.K)
	}

	if _, err := fw.NewDynamicSession(core.DynamicKConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}
