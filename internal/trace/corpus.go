package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// This file builds the golden conformance corpus committed under
// testdata/traces at the repository root: one trained model snapshot, one
// recorded trace per scenario (normal operation plus each gas-pipeline
// attack category) and one golden verdict file per trace. Regenerate with
// `go run ./cmd/icsreplay -record testdata/traces` after any deliberate
// change to the trace format, the decode rules or the model recipe; the
// conformance test then holds every future build to the new goldens.

// CorpusConfig parameterizes BuildCorpus.
type CorpusConfig struct {
	// Dir receives the model, traces and verdict files.
	Dir string
	// FrameSeedDir, when non-empty, receives one .bin file per distinct
	// frame shape seen across the corpus — the fuzz seed corpus of
	// internal/modbus.
	FrameSeedDir string
	// TrainPackages sizes the normal capture the model trains on
	// (default 16000).
	TrainPackages int
	// Seed drives the whole build (default 1).
	Seed uint64
}

// CorpusScenario is one recorded scenario: a name, the attack it carries
// (Normal for the clean trace) and the episode script.
type CorpusScenario struct {
	Name   string
	Attack dataset.AttackType
	Script func(sim *gaspipeline.Simulator)
}

// CorpusScenarios returns the scenario set of the golden corpus: normal
// operation plus two episodes of every attack category of Table II,
// separated by normal traffic so each trace exercises attack onset, attack
// steady-state and recovery.
func CorpusScenarios() []CorpusScenario {
	attackScript := func(run func(sim *gaspipeline.Simulator)) func(sim *gaspipeline.Simulator) {
		return func(sim *gaspipeline.Simulator) {
			for i := 0; i < 8; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
			run(sim)
			for i := 0; i < 10; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
			run(sim)
			for i := 0; i < 8; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
		}
	}
	return []CorpusScenario{
		{Name: "normal", Attack: dataset.Normal, Script: func(sim *gaspipeline.Simulator) {
			for i := 0; i < 60; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
		}},
		{Name: "nmri", Attack: dataset.NMRI, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunNMRIEpisode(4)
		})},
		{Name: "cmri", Attack: dataset.CMRI, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunCMRIEpisode(6)
		})},
		{Name: "msci", Attack: dataset.MSCI, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunMSCIEpisode(3)
		})},
		{Name: "mpci", Attack: dataset.MPCI, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunMPCIEpisode(3)
		})},
		{Name: "mfci", Attack: dataset.MFCI, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunMFCIEpisode(4)
		})},
		{Name: "dos", Attack: dataset.DOS, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunDoSEpisode(4)
		})},
		{Name: "recon", Attack: dataset.Recon, Script: attackScript(func(sim *gaspipeline.Simulator) {
			sim.RunReconEpisode(10)
		})},
	}
}

// recordScenario runs script on a fresh simulator (after an unrecorded
// warm-up so the PID loop and CRC window have settled) and returns the
// recorded trace bytes.
func recordScenario(name, fingerprint string, seed uint64, script func(*gaspipeline.Simulator)) ([]byte, error) {
	simCfg := gaspipeline.DefaultSimConfig()
	simCfg.Seed = seed
	sim, err := gaspipeline.NewSimulator(simCfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 60; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, SimHeader(name, fingerprint))
	if err != nil {
		return nil, err
	}
	sim.SetFrameSink(rec.RecordSim)
	script(sim)
	sim.SetFrameSink(nil)
	if err := rec.Flush(); err != nil {
		return nil, fmt.Errorf("trace: record %s: %w", name, err)
	}
	return buf.Bytes(), nil
}

// corpusTrainConfig is the fixed model recipe of the golden corpus: small
// enough to train in seconds, expressive enough that every attack category
// is detectable on replayed traces.
func corpusTrainConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 8, SetpointBins: 5, PIDClusters: 4,
	}
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = 16
	cfg.Fit.BatchSize = 8
	cfg.Fit.LR = 3e-3
	cfg.Seed = seed
	return cfg
}

// TrainCorpusModel trains the corpus framework the way BuildCorpus does:
// on the package stream decoded from a recorded attack-free trace, so the
// model sees exactly the feature distributions replay reconstructs from
// wire bytes (not the simulator's internal state view).
func TrainCorpusModel(trainPackages int, seed uint64) (*core.Framework, error) {
	if trainPackages <= 0 {
		trainPackages = 16000
	}
	cycles := trainPackages / 4
	raw, err := recordScenario("train", "", seed, func(sim *gaspipeline.Simulator) {
		for i := 0; i < cycles; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
	})
	if err != nil {
		return nil, err
	}
	h, recs, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		return nil, err
	}
	split, err := dataset.MakeSplit(&dataset.Dataset{Packages: pkgs}, dataset.SplitConfig{})
	if err != nil {
		return nil, err
	}
	fw, _, err := core.Train(split, corpusTrainConfig(seed))
	return fw, err
}

// CorpusReport summarizes a BuildCorpus run.
type CorpusReport struct {
	Fingerprint string
	// Results holds the golden replay of every scenario.
	Results []*Result
	// FrameSeeds is the number of fuzz seed frames written.
	FrameSeeds int
}

// BuildCorpus trains the corpus model, records every scenario, replays each
// trace to produce its golden verdicts, and writes the whole corpus to
// cfg.Dir (model.fw, <scenario>.trace, <scenario>.verdicts). Every attack
// trace must yield at least one detected attack package — a corpus whose
// goldens say "nothing detected" would pin a useless model — otherwise the
// build fails.
func BuildCorpus(cfg CorpusConfig) (*CorpusReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("trace: corpus dir required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	fw, err := TrainCorpusModel(cfg.TrainPackages, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace: train corpus model: %w", err)
	}
	fingerprint := fw.Fingerprint()
	var model bytes.Buffer
	if err := fw.Save(&model); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "model.fw"), model.Bytes(), 0o644); err != nil {
		return nil, err
	}

	report := &CorpusReport{Fingerprint: fingerprint}
	var seedFrames [][]byte
	seenShapes := make(map[string]bool)
	for i, sc := range CorpusScenarios() {
		// Scenario seeds are offset from the training seed so no golden
		// trace replays traffic the model was fit on (seed+0 would make the
		// normal trace a bitwise prefix of the training capture).
		raw, err := recordScenario(sc.Name, fingerprint, cfg.Seed+1+uint64(i)*0x9E3779B9, sc.Script)
		if err != nil {
			return nil, err
		}
		h, recs, err := ReadAll(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("trace: reread %s: %w", sc.Name, err)
		}
		res, err := Replay(fw, h, recs, ReplayConfig{})
		if err != nil {
			return nil, fmt.Errorf("trace: golden replay %s: %w", sc.Name, err)
		}
		if sc.Attack != dataset.Normal && res.PerAttack.Detected[sc.Attack] == 0 {
			return nil, fmt.Errorf("trace: corpus scenario %s: no %v package detected; refusing to pin a blind golden",
				sc.Name, sc.Attack)
		}
		if err := os.WriteFile(filepath.Join(cfg.Dir, sc.Name+".trace"), raw, 0o644); err != nil {
			return nil, err
		}
		golden := FormatVerdicts(sc.Name, fingerprint, res.Verdicts)
		if err := os.WriteFile(filepath.Join(cfg.Dir, sc.Name+".verdicts"), golden, 0o644); err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)

		for _, rec := range recs {
			shape := fmt.Sprintf("%x:%d:%v", rec.Frame[1], len(rec.Frame), rec.IsCmd)
			if !seenShapes[shape] {
				seenShapes[shape] = true
				seedFrames = append(seedFrames, rec.Frame)
			}
		}
	}

	if cfg.FrameSeedDir != "" {
		if err := os.MkdirAll(cfg.FrameSeedDir, 0o755); err != nil {
			return nil, err
		}
		// A regeneration owns the seed directory: drop seeds of a previous
		// corpus so a shrinking shape set cannot leave stale frames behind.
		stale, err := filepath.Glob(filepath.Join(cfg.FrameSeedDir, "corpus*.bin"))
		if err != nil {
			return nil, err
		}
		for _, p := range stale {
			if err := os.Remove(p); err != nil {
				return nil, err
			}
		}
		for i, frame := range seedFrames {
			name := filepath.Join(cfg.FrameSeedDir, fmt.Sprintf("corpus%02d.bin", i))
			if err := os.WriteFile(name, frame, 0o644); err != nil {
				return nil, err
			}
		}
		report.FrameSeeds = len(seedFrames)
	}
	return report, nil
}
