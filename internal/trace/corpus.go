package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/scenario"
	"icsdetect/internal/signature"
)

// This file builds the golden conformance corpora committed under
// testdata/traces at the repository root: per testbed, one trained model
// snapshot, one recorded trace per corpus scenario (normal operation plus
// each attack category) and one golden verdict file per trace. Regenerate
// with `go run ./cmd/icsreplay -record testdata/traces` (gas pipeline) or
// `go run ./cmd/icsreplay -record testdata/traces/watertank -scenario
// watertank` after any deliberate change to the trace format, the decode
// rules or the model recipe; the conformance test then holds every future
// build to the new goldens.

// CorpusConfig parameterizes BuildCorpus.
type CorpusConfig struct {
	// Scenario is the testbed the corpus records (required).
	Scenario scenario.Scenario
	// Dir receives the model, traces and verdict files.
	Dir string
	// FrameSeedDir, when non-empty, receives one .bin file per distinct
	// frame shape seen across the corpus — the fuzz seed corpus of
	// internal/modbus.
	FrameSeedDir string
	// SeedPrefix names this corpus's fuzz seed files
	// (<prefix>NN.bin; default "corpus"). Distinct testbeds use distinct
	// prefixes so regenerating one corpus cannot delete another's seeds.
	SeedPrefix string
	// TrainPackages sizes the normal capture the model trains on
	// (default 16000).
	TrainPackages int
	// Seed drives the whole build (default 1).
	Seed uint64
}

// CorpusScenario is one recorded corpus entry: a name, the attack it
// carries (Normal for the clean trace) and the per-injection episode
// length passed to scenario.Sim.RunAttackEpisode.
type CorpusScenario struct {
	Name    string
	Attack  dataset.AttackType
	Episode int
}

// CorpusScenarios returns the recording script set of a golden corpus:
// normal operation plus two episodes of every attack category of Table II,
// separated by normal traffic so each trace exercises attack onset, attack
// steady-state and recovery. The set is testbed-independent — each
// scenario's injectors interpret the episode lengths in their own units.
func CorpusScenarios() []CorpusScenario {
	return []CorpusScenario{
		{Name: "normal", Attack: dataset.Normal},
		{Name: "nmri", Attack: dataset.NMRI, Episode: 4},
		{Name: "cmri", Attack: dataset.CMRI, Episode: 6},
		{Name: "msci", Attack: dataset.MSCI, Episode: 3},
		{Name: "mpci", Attack: dataset.MPCI, Episode: 3},
		{Name: "mfci", Attack: dataset.MFCI, Episode: 4},
		{Name: "dos", Attack: dataset.DOS, Episode: 4},
		{Name: "recon", Attack: dataset.Recon, Episode: 10},
	}
}

// runScript drives one corpus scenario on a live simulation: 60 cycles of
// normal traffic for the clean trace, or two attack episodes bracketed and
// separated by normal operation.
func runScript(sim scenario.Sim, sc CorpusScenario) error {
	if sc.Attack == dataset.Normal {
		for i := 0; i < 60; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
		return nil
	}
	for i := 0; i < 8; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := sim.RunAttackEpisode(sc.Attack, sc.Episode); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := sim.RunAttackEpisode(sc.Attack, sc.Episode); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	return nil
}

// recordScenario runs script on a fresh simulation of tb (after an
// unrecorded warm-up so the control loop and CRC window have settled) and
// returns the recorded trace bytes.
func recordScenario(tb scenario.Scenario, name, fingerprint string, seed uint64,
	script func(scenario.Sim) error) ([]byte, error) {
	sim, err := tb.NewSim(seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 60; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, SimHeader(name, fingerprint, tb.Registers()))
	if err != nil {
		return nil, err
	}
	sim.SetFrameSink(rec.RecordSim)
	scriptErr := script(sim)
	sim.SetFrameSink(nil)
	if scriptErr != nil {
		return nil, fmt.Errorf("trace: record %s: %w", name, scriptErr)
	}
	if err := rec.Flush(); err != nil {
		return nil, fmt.Errorf("trace: record %s: %w", name, err)
	}
	return buf.Bytes(), nil
}

// corpusTrainConfig is the fixed model recipe of the golden corpora: small
// enough to train in seconds, expressive enough that every attack category
// is detectable on replayed traces. It is deliberately identical across
// testbeds — the detector is process-agnostic, so the corpora double as
// evidence that one recipe transfers between plants.
func corpusTrainConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 8, SetpointBins: 5, PIDClusters: 4,
	}
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = 16
	cfg.Fit.BatchSize = 8
	cfg.Fit.LR = 3e-3
	cfg.Seed = seed
	return cfg
}

// TrainCorpusModel trains the corpus framework for tb the way BuildCorpus
// does: on the package stream decoded from a recorded attack-free trace, so
// the model sees exactly the feature distributions replay reconstructs from
// wire bytes (not the simulator's internal state view).
func TrainCorpusModel(tb scenario.Scenario, trainPackages int, seed uint64) (*core.Framework, error) {
	if trainPackages <= 0 {
		trainPackages = 16000
	}
	cycles := trainPackages / 4
	raw, err := recordScenario(tb, "train", "", seed, func(sim scenario.Sim) error {
		for i := 0; i < cycles; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	h, recs, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		return nil, err
	}
	split, err := dataset.MakeSplit(&dataset.Dataset{Packages: pkgs}, dataset.SplitConfig{})
	if err != nil {
		return nil, err
	}
	fw, _, err := core.Train(split, corpusTrainConfig(seed))
	return fw, err
}

// CorpusReport summarizes a BuildCorpus run.
type CorpusReport struct {
	Fingerprint string
	// Results holds the golden replay of every scenario.
	Results []*Result
	// FrameSeeds is the number of fuzz seed frames written.
	FrameSeeds int
}

// BuildCorpus trains the corpus model for the configured testbed, records
// every corpus scenario, replays each trace to produce its golden verdicts,
// and writes the whole corpus to cfg.Dir (model.fw, <scenario>.trace,
// <scenario>.verdicts). Every attack trace must yield at least one detected
// attack package — a corpus whose goldens say "nothing detected" would pin
// a useless model — otherwise the build fails.
func BuildCorpus(cfg CorpusConfig) (*CorpusReport, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("trace: corpus scenario required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("trace: corpus dir required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SeedPrefix == "" {
		cfg.SeedPrefix = "corpus"
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	fw, err := TrainCorpusModel(cfg.Scenario, cfg.TrainPackages, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace: train corpus model: %w", err)
	}
	fingerprint := fw.Fingerprint()
	var model bytes.Buffer
	if err := fw.Save(&model); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "model.fw"), model.Bytes(), 0o644); err != nil {
		return nil, err
	}

	report := &CorpusReport{Fingerprint: fingerprint}
	var seedFrames [][]byte
	seenShapes := make(map[string]bool)
	for i, sc := range CorpusScenarios() {
		// Scenario seeds are offset from the training seed so no golden
		// trace replays traffic the model was fit on (seed+0 would make the
		// normal trace a bitwise prefix of the training capture).
		sc := sc
		raw, err := recordScenario(cfg.Scenario, sc.Name, fingerprint,
			cfg.Seed+1+uint64(i)*0x9E3779B9,
			func(sim scenario.Sim) error { return runScript(sim, sc) })
		if err != nil {
			return nil, err
		}
		h, recs, err := ReadAll(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("trace: reread %s: %w", sc.Name, err)
		}
		res, err := Replay(fw, h, recs, ReplayConfig{})
		if err != nil {
			return nil, fmt.Errorf("trace: golden replay %s: %w", sc.Name, err)
		}
		if sc.Attack != dataset.Normal && res.PerAttack.Detected[sc.Attack] == 0 {
			return nil, fmt.Errorf("trace: corpus scenario %s: no %v package detected; refusing to pin a blind golden",
				sc.Name, sc.Attack)
		}
		if err := os.WriteFile(filepath.Join(cfg.Dir, sc.Name+".trace"), raw, 0o644); err != nil {
			return nil, err
		}
		golden := FormatVerdicts(sc.Name, fingerprint, res.Verdicts)
		if err := os.WriteFile(filepath.Join(cfg.Dir, sc.Name+".verdicts"), golden, 0o644); err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)

		for _, rec := range recs {
			shape := fmt.Sprintf("%x:%d:%v", rec.Frame[1], len(rec.Frame), rec.IsCmd)
			if !seenShapes[shape] {
				seenShapes[shape] = true
				seedFrames = append(seedFrames, rec.Frame)
			}
		}
	}

	if cfg.FrameSeedDir != "" {
		if err := os.MkdirAll(cfg.FrameSeedDir, 0o755); err != nil {
			return nil, err
		}
		// A regeneration owns its seed prefix: drop seeds of a previous
		// corpus so a shrinking shape set cannot leave stale frames behind.
		stale, err := filepath.Glob(filepath.Join(cfg.FrameSeedDir, cfg.SeedPrefix+"*.bin"))
		if err != nil {
			return nil, err
		}
		for _, p := range stale {
			if err := os.Remove(p); err != nil {
				return nil, err
			}
		}
		for i, frame := range seedFrames {
			name := filepath.Join(cfg.FrameSeedDir, fmt.Sprintf("%s%02d.bin", cfg.SeedPrefix, i))
			if err := os.WriteFile(name, frame, 0o644); err != nil {
				return nil, err
			}
		}
		report.FrameSeeds = len(seedFrames)
	}
	return report, nil
}
