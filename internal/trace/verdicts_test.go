package trace

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"icsdetect/internal/core"
)

func sampleVerdicts(withEvidence bool) []core.Verdict {
	vs := []core.Verdict{
		{Signature: "0|1|2", Rank: -1},
		{Anomaly: true, Level: core.LevelPackage, Signature: "9|9|9", Rank: -1},
		{Anomaly: true, Level: core.LevelTimeSeries, Signature: "0|1|3", Rank: 7},
		{Signature: "0|1|2", Rank: 0},
	}
	if withEvidence {
		vs[1].Evidence = []core.LevelEvidence{
			{Stage: "bloom", Level: core.LevelPackage, Scored: true, Flagged: true, Score: 1, Rank: -1},
		}
		vs[2].Evidence = []core.LevelEvidence{
			{Stage: "bloom", Level: core.LevelPackage, Scored: true, Rank: -1},
			{Stage: "pca", Level: core.LevelPCA, Scored: true, Flagged: true, Score: 12.345678901234567, Rank: -1},
			{Stage: "lstm", Level: core.LevelTimeSeries, Scored: true, Flagged: true, Score: 7, Rank: 7},
		}
		vs[3].Evidence = []core.LevelEvidence{
			{Stage: "bloom", Level: core.LevelPackage, Scored: true, Rank: -1},
			{Stage: "pca", Level: core.LevelPCA, Rank: -1, Score: math.Inf(1)},
			{Stage: "lstm", Level: core.LevelTimeSeries, Scored: true, Score: 0, Rank: 0},
		}
	}
	return vs
}

// TestVerdictFormatVersionSelection: verdict streams without evidence must
// serialize in the v1 format (byte-compatible with the committed golden
// corpora); any evidence bumps the document to v2.
func TestVerdictFormatVersionSelection(t *testing.T) {
	v1 := FormatVerdicts("normal", "feedface00000000", sampleVerdicts(false))
	if !strings.HasPrefix(string(v1), "# icsdetect golden verdicts v1\n") {
		t.Fatalf("evidence-free stream not in v1: %q", strings.SplitN(string(v1), "\n", 2)[0])
	}
	if strings.Contains(string(v1), " -\n") {
		t.Fatal("v1 document carries an evidence column")
	}
	v2 := FormatVerdicts("normal", "feedface00000000", sampleVerdicts(true))
	if !strings.HasPrefix(string(v2), "# icsdetect golden verdicts v2\n") {
		t.Fatalf("evidence stream not in v2: %q", strings.SplitN(string(v2), "\n", 2)[0])
	}
}

// TestVerdictFormatRoundTrip: ParseVerdicts must restore both format
// versions exactly, evidence (including infinities and full float
// precision) included.
func TestVerdictFormatRoundTrip(t *testing.T) {
	for _, withEvidence := range []bool{false, true} {
		vs := sampleVerdicts(withEvidence)
		doc := FormatVerdicts("mpci", "00c0ffee00000000", vs)
		scenario, fingerprint, got, err := ParseVerdicts(doc)
		if err != nil {
			t.Fatalf("evidence=%v: %v", withEvidence, err)
		}
		if scenario != "mpci" || fingerprint != "00c0ffee00000000" {
			t.Fatalf("header round-trip: %q %q", scenario, fingerprint)
		}
		if len(got) != len(vs) {
			t.Fatalf("%d verdicts, want %d", len(got), len(vs))
		}
		for i := range vs {
			if !got[i].Equal(vs[i]) {
				t.Fatalf("evidence=%v verdict %d: %+v, want %+v", withEvidence, i, got[i], vs[i])
			}
		}
		// Reformatting the parsed stream reproduces the document bytes.
		if again := FormatVerdicts(scenario, fingerprint, got); string(again) != string(doc) {
			t.Fatalf("evidence=%v: reformat diverged at line %d", withEvidence, DiffVerdicts(doc, again))
		}
	}
}

// TestVerdictFormatRejectsMalformed: the reader must reject truncated and
// corrupted documents instead of silently shrinking them.
func TestVerdictFormatRejectsMalformed(t *testing.T) {
	good := FormatVerdicts("normal", "feedface00000000", sampleVerdicts(true))
	bad := [][]byte{
		[]byte(""),
		[]byte("# not a verdict file\n# scenario=a fingerprint=b packages=0\n"),
		[]byte("# icsdetect golden verdicts v3\n# scenario=a fingerprint=b packages=0\n"),
		[]byte("# icsdetect golden verdicts v1\n# scenario=a fingerprint=b packages=2\n0 0 0 -1 s\n"),
		[]byte("# icsdetect golden verdicts v1\n# scenario=a fingerprint=b packages=1\n0 7 0 -1 s\n"),
		[]byte("# icsdetect golden verdicts v2\n# scenario=a fingerprint=b packages=1\n0 0 0 -1 s bloom:1:1\n"),
	}
	for i, doc := range bad {
		if _, _, _, err := ParseVerdicts(doc); err == nil {
			t.Errorf("malformed document %d accepted", i)
		}
	}
	// Sanity: the good document still parses.
	if _, _, _, err := ParseVerdicts(good); err != nil {
		t.Fatalf("good document rejected: %v", err)
	}
}

// TestCommittedGoldensParse: every committed golden corpus file must parse
// through the back-compat reader (they are v1 documents).
func TestCommittedGoldensParse(t *testing.T) {
	// Kept in the root conformance suite's territory path-wise; here we
	// just lock the v1 grammar against a representative literal.
	doc := []byte("# icsdetect golden verdicts v1\n# scenario=dos fingerprint=0123456789abcdef packages=2\n" +
		"0 0 0 -1 1|2|3\n1 1 2 9 1|2|4\n")
	scenario, _, vs, err := ParseVerdicts(doc)
	if err != nil {
		t.Fatal(err)
	}
	if scenario != "dos" || len(vs) != 2 || !vs[1].Anomaly || vs[1].Rank != 9 {
		t.Fatalf("v1 literal parsed wrong: %q %+v", scenario, vs)
	}
	if !reflect.DeepEqual(FormatVerdicts("dos", "0123456789abcdef", vs), doc) {
		t.Fatal("v1 literal does not reformat to itself")
	}
}
