package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
	"icsdetect/internal/tap"
)

func TestFormatRoundTrip(t *testing.T) {
	h := Header{
		Format:      FormatRTU,
		Scenario:    "unit-test",
		Fingerprint: "00deadbeef00cafe",
		Registers:   gaspipeline.Registers(),
	}
	h.Registers.Pressure = -1 // negative indices must survive
	recs := []*Record{
		{Delta: 0, Label: dataset.Normal, IsCmd: true, Frame: []byte{4, 0x41, 0, 0, 0, 11, 1, 2}},
		{Delta: 1, Label: dataset.DOS, IsCmd: false, Frame: []byte{4, 0x03, 9, 9}},
		{Delta: 3_999_999_999, Label: dataset.Recon, IsCmd: true, Frame: bytes.Repeat([]byte{0xAB}, 256)},
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	gotH, gotRecs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h.Version = Version
	if gotH != h {
		t.Errorf("header = %+v, want %+v", gotH, h)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("read %d records, want %d", len(gotRecs), len(recs))
	}
	for i, got := range gotRecs {
		want := recs[i]
		if got.Delta != want.Delta || got.Label != want.Label || got.IsCmd != want.IsCmd ||
			!bytes.Equal(got.Frame, want.Frame) {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, SimHeader("x", "", gaspipeline.Registers()))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(&Record{Frame: []byte{4, 3, 0, 0}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	for _, tc := range []struct {
		name    string
		mutate  func([]byte) []byte
		headerE bool
	}{
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, true},
		{"future-version", func(b []byte) []byte { b[9] = 99; return b }, true},
		{"unknown-format", func(b []byte) []byte { b[10] = 9; return b }, true},
		{"reserved-bit", func(b []byte) []byte { b[11] = 1; return b }, true},
		{"truncated-record", func(b []byte) []byte { return b[:len(b)-2] }, false},
		{"unknown-flags", func(b []byte) []byte { b[len(b)-5] = 0x80; return b }, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mutate(bytes.Clone(valid))
			r, err := NewReader(bytes.NewReader(raw))
			if tc.headerE {
				if err == nil {
					t.Fatal("header accepted")
				}
				return
			}
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			if _, err := r.Next(); err == nil || err == io.EOF {
				t.Fatalf("record accepted (err=%v)", err)
			}
		})
	}
}

// TestRecordDeltaCap: absurd timestamp deltas are rejected on both ends —
// the writer refuses to produce them and the reader treats them as
// corruption — so a hostile trace cannot make timed replay sleep for years
// or overflow the decoder's nanosecond accumulator.
func TestRecordDeltaCap(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, SimHeader("x", "", gaspipeline.Registers()))
	if err != nil {
		t.Fatal(err)
	}
	huge := uint64(48 * 60 * 60 * 1e9) // 48h
	if err := w.Write(&Record{Delta: huge, Frame: []byte{4, 3, 0, 0}}); err == nil {
		t.Error("writer accepted a 48h record delta")
	}
	if err := w.Write(&Record{Delta: uint64(time.Hour.Nanoseconds()), Frame: []byte{4, 3, 0, 0}}); err != nil {
		t.Errorf("writer rejected a 1h record delta: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft a record carrying the oversized delta and append it.
	var payload []byte
	payload = appendUvarintForTest(payload, huge)
	payload = append(payload, 0, 0, 4, 3, 0, 0)
	raw := buf.Bytes()
	raw = appendUvarintForTest(raw, uint64(len(payload)))
	raw = append(raw, payload...)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("reader accepted a 48h record delta (err=%v)", err)
	}
}

func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// recordTestScenario records a small labeled scenario and returns the raw
// trace plus the simulator's own package view of the recorded traffic. The
// simulator warms up (and runs through glitch-prone, unrecorded traffic)
// before the sink attaches, so the tests cover the warm-start case:
// attaching the sink must reset the CRC window, or the first logged rates
// would reflect corruption that never made it into the capture.
func recordTestScenario(t *testing.T, glitchProb float64) ([]byte, []*dataset.Package) {
	t.Helper()
	cfg := gaspipeline.DefaultSimConfig()
	cfg.Seed = 99
	cfg.CRCGlitchProb = glitchProb
	sim, err := gaspipeline.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	warmed := len(sim.Packages())
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, SimHeader("unit", "", gaspipeline.Registers()))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFrameSink(rec.RecordSim)
	for i := 0; i < 20; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	sim.RunDoSEpisode(2)
	sim.RunReconEpisode(4)
	for i := 0; i < 10; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sim.Packages()[warmed:]
}

// TestDecodeMatchesSimulatorView: the package stream reconstructed from
// recorded wire bytes must agree with the simulator's own records on every
// feature a frame actually carries, and decoding must be deterministic.
func TestDecodeMatchesSimulatorView(t *testing.T) {
	raw, simPkgs := recordTestScenario(t, 0)
	h, recs, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(simPkgs) {
		t.Fatalf("decoded %d packages, simulator has %d", len(pkgs), len(simPkgs))
	}
	base := simPkgs[0].Time
	for i, got := range pkgs {
		want := simPkgs[i]
		if got.Address != want.Address || got.Function != want.Function ||
			got.Length != want.Length || got.CmdResponse != want.CmdResponse ||
			got.Label != want.Label || got.CRCRate != want.CRCRate {
			t.Fatalf("package %d: decoded %+v, simulator %+v", i, got, want)
		}
		if math.Abs((want.Time-base)-got.Time) > 1e-6 {
			t.Fatalf("package %d: time %v vs simulator %v", i, got.Time, want.Time-base)
		}
		// Parameter columns agree wherever the frame carried them (write
		// commands and read responses; quantized to the register scale).
		if want.Function == 0x10 && want.CmdResponse == 1 || want.Function == 0x41 && want.CmdResponse == 0 {
			if math.Abs(got.Setpoint-want.Setpoint) > 0.011 ||
				math.Abs(got.Pressure-want.Pressure) > 0.011 {
				t.Fatalf("package %d: decoded setpoint/pressure %v/%v, simulator %v/%v",
					i, got.Setpoint, got.Pressure, want.Setpoint, want.Pressure)
			}
		}
	}

	again, err := Packages(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkgs {
		if !reflect.DeepEqual(pkgs[i], again[i]) {
			t.Fatalf("package %d differs across decodes: %+v vs %+v", i, pkgs[i], again[i])
		}
	}
}

// TestCRCRateSurvivesRecording: corrupted frames (tampered or glitched)
// must drive the decoded crc_rate above zero exactly as the simulator
// logged it, even though benign glitches happen after frame encoding.
func TestCRCRateSurvivesRecording(t *testing.T) {
	raw, simPkgs := recordTestScenario(t, 0.05)
	h, recs, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for i, p := range pkgs {
		if p.CRCRate != simPkgs[i].CRCRate {
			t.Fatalf("package %d: crc rate %v, simulator %v", i, p.CRCRate, simPkgs[i].CRCRate)
		}
		if p.CRCRate > peak {
			peak = p.CRCRate
		}
	}
	if peak == 0 {
		t.Fatal("no corrupted frame survived recording")
	}
}

// testFramework builds a small deterministic framework over the decoded
// trace packages without any training (the LSTM keeps its random init:
// verdicts are arbitrary but perfectly reproducible, which is all replay
// equivalence needs).
func testFramework(t *testing.T, pkgs []*dataset.Package) *core.Framework {
	t.Helper()
	var clean dataset.Fragment
	for _, p := range pkgs {
		if !p.IsAttack() {
			clean = append(clean, p)
		}
	}
	frags := []dataset.Fragment{clean}
	enc, err := signature.FitEncoder(frags, signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2, PressureBins: 4, SetpointBins: 3, PIDClusters: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	db := signature.BuildDB(enc, frags)
	pkgDet, err := core.NewPackageDetector(db, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ienc := core.NewInputEncoder(enc)
	model, err := nn.NewClassifier(ienc.Dim, []int{8}, db.Size(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Framework{
		Encoder: enc,
		DB:      db,
		Package: pkgDet,
		Series:  &core.TimeSeriesDetector{Model: model, K: 3},
		Input:   ienc,
	}
}

// TestReplayPathsAgree: sequential session, batched engine, repeated runs,
// timed mode and the scalar kernels must all produce the identical verdict
// stream for one trace — the conformance property, exercised here on an
// in-test corpus so it runs without the committed goldens.
func TestReplayPathsAgree(t *testing.T) {
	raw, _ := recordTestScenario(t, 0.01)
	h, recs, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	fw := testFramework(t, pkgs)

	seq, err := Replay(fw, h, recs, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Verdicts) != len(recs) {
		t.Fatalf("%d verdicts for %d records", len(seq.Verdicts), len(recs))
	}
	if seq.Confusion.Total() != len(recs) {
		t.Fatalf("confusion total %d, want %d", seq.Confusion.Total(), len(recs))
	}
	if seq.Latency.Episodes[dataset.DOS] == 0 || seq.Latency.Episodes[dataset.Recon] == 0 {
		t.Fatalf("latency accounting found no DoS/Recon episodes: %+v", seq.Latency.Episodes)
	}

	golden := FormatVerdicts(h.Scenario, h.Fingerprint, seq.Verdicts)

	check := func(name string, cfg ReplayConfig) {
		t.Helper()
		res, err := Replay(fw, h, recs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := FormatVerdicts(h.Scenario, h.Fingerprint, res.Verdicts)
		if line := DiffVerdicts(golden, got); line != 0 {
			t.Fatalf("%s: verdicts differ from sequential replay at line %d", name, line)
		}
	}

	check("repeat", ReplayConfig{})
	check("engine", ReplayConfig{Engine: &engine.Config{Shards: 2, MaxBatch: 8}})
	check("engine-wide", ReplayConfig{Engine: &engine.Config{Shards: 4, MaxBatch: 32, QueueDepth: 16}})
	// Odd burst width: bursts straddle micro-batch boundaries.
	check("engine-burst", ReplayConfig{Engine: &engine.Config{Shards: 2, MaxBatch: 8}, Burst: 7})
	check("engine-burst-wide", ReplayConfig{Engine: &engine.Config{Shards: 4, MaxBatch: 32, QueueDepth: 16}, Burst: 96})
	check("timed", ReplayConfig{Timed: true, Speed: 1e6})

	prev := mathx.SetSIMDEnabled(false)
	defer mathx.SetSIMDEnabled(prev)
	check("scalar", ReplayConfig{})
	check("scalar-engine", ReplayConfig{Engine: &engine.Config{Shards: 2, MaxBatch: 8}})
}

// TestRecorderTapPath: frames recorded off the live Modbus/TCP tap decode
// back into the exact packages the tap produced.
func TestRecorderTapPath(t *testing.T) {
	bank := modbus.NewRegisterBank(16, 4)
	srv := modbus.NewServer(bank, 4)
	slaveAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	proxy := tap.New(slaveAddr.String(), gaspipeline.Registers())
	tapAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	client, err := modbus.Dial(tapAddr, 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, TapHeader("tap-unit", gaspipeline.Registers()))
	if err != nil {
		t.Fatal(err)
	}
	proxy.SetRecorder(rec.RecordTap)

	if err := client.WriteMultipleRegisters(0, []uint16{800, 45, 15, 5, 250, 2, 2, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := bank.StoreMeasurement(10, 812); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadHoldingRegisters(0, 11); err != nil {
		t.Fatal(err)
	}
	tapPkgs := proxy.Drain()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	h, recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Format != FormatTCP {
		t.Fatalf("format = %v", h.Format)
	}
	pkgs, err := Packages(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(tapPkgs) {
		t.Fatalf("decoded %d packages, tap saw %d", len(pkgs), len(tapPkgs))
	}
	for i, got := range pkgs {
		want := tapPkgs[i]
		if got.Address != want.Address || got.Function != want.Function ||
			got.Length != want.Length || got.CmdResponse != want.CmdResponse ||
			got.Setpoint != want.Setpoint || got.Pressure != want.Pressure {
			t.Errorf("package %d: decoded %+v, tap %+v", i, got, want)
		}
	}
}
