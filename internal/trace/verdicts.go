package trace

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"icsdetect/internal/core"
)

// Golden-verdict documents come in two versions:
//
//   - v1 is the original format: one line per package — index, anomaly
//     bit, level, rank, signature — after a fixed two-line preamble. Every
//     verdict of the canonical first-hit stacks is fully described by
//     those fields, so v1 remains the format of the committed golden
//     corpora (which the default bloom,lstm stack must regenerate
//     byte-identically).
//   - v2 appends a sixth per-level evidence column for verdicts of
//     non-canonical stacks (extra levels, or majority/weighted fusion):
//     `-` when a verdict carries no evidence, otherwise `;`-separated
//     entries `stage:level:scored:flagged:score:rank` with the score in
//     Go's shortest round-trippable float syntax.
//
// FormatVerdicts picks v1 exactly when no verdict carries evidence, so
// documents of the original framework never change bytes; ParseVerdicts
// reads both versions.

// FormatVerdicts renders a verdict stream as canonical golden-verdict
// text. Golden files compare bytewise, so any verdict drift shows as a
// concrete first-differing line.
func FormatVerdicts(scenario, fingerprint string, vs []core.Verdict) []byte {
	version := 1
	for i := range vs {
		if vs[i].Evidence != nil {
			version = 2
			break
		}
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "# icsdetect golden verdicts v%d\n", version)
	fmt.Fprintf(&b, "# scenario=%s fingerprint=%s packages=%d\n", scenario, fingerprint, len(vs))
	for i, v := range vs {
		anomaly := 0
		if v.Anomaly {
			anomaly = 1
		}
		if version == 1 {
			fmt.Fprintf(&b, "%d %d %d %d %s\n", i, anomaly, int(v.Level), v.Rank, v.Signature)
			continue
		}
		fmt.Fprintf(&b, "%d %d %d %d %s %s\n", i, anomaly, int(v.Level), v.Rank, v.Signature,
			formatEvidence(v.Evidence))
	}
	return b.Bytes()
}

func formatEvidence(ev []core.LevelEvidence) string {
	if len(ev) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, e := range ev {
		if i > 0 {
			b.WriteByte(';')
		}
		scored, flagged := 0, 0
		if e.Scored {
			scored = 1
		}
		if e.Flagged {
			flagged = 1
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d:%s:%d", e.Stage, int(e.Level), scored, flagged,
			strconv.FormatFloat(e.Score, 'g', -1, 64), e.Rank)
	}
	return b.String()
}

// ParseVerdicts reads a golden-verdict document of either version back
// into the scenario, fingerprint and verdict stream it was formatted
// from. Evidence columns of v2 documents are restored; v1 documents
// yield verdicts without evidence.
func ParseVerdicts(doc []byte) (scenario, fingerprint string, vs []core.Verdict, err error) {
	lines := strings.Split(string(doc), "\n")
	if len(lines) < 2 {
		return "", "", nil, fmt.Errorf("trace: verdict document too short")
	}
	var version int
	if _, err := fmt.Sscanf(lines[0], "# icsdetect golden verdicts v%d", &version); err != nil {
		return "", "", nil, fmt.Errorf("trace: bad verdict preamble %q", lines[0])
	}
	if version != 1 && version != 2 {
		return "", "", nil, fmt.Errorf("trace: unsupported verdict format v%d", version)
	}
	var packages int
	if _, err := fmt.Sscanf(lines[1], "# scenario=%s fingerprint=%s packages=%d",
		&scenario, &fingerprint, &packages); err != nil {
		return "", "", nil, fmt.Errorf("trace: bad verdict header %q", lines[1])
	}
	vs = make([]core.Verdict, 0, packages)
	for ln, line := range lines[2:] {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		want := 5
		if version == 2 {
			want = 6
		}
		if len(fields) != want {
			return "", "", nil, fmt.Errorf("trace: verdict line %d has %d fields, want %d", ln+3, len(fields), want)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil || idx != len(vs) {
			return "", "", nil, fmt.Errorf("trace: verdict line %d: bad index %q", ln+3, fields[0])
		}
		anomaly, err := strconv.Atoi(fields[1])
		if err != nil || (anomaly != 0 && anomaly != 1) {
			return "", "", nil, fmt.Errorf("trace: verdict line %d: bad anomaly bit %q", ln+3, fields[1])
		}
		level, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", "", nil, fmt.Errorf("trace: verdict line %d: bad level %q", ln+3, fields[2])
		}
		rank, err := strconv.Atoi(fields[3])
		if err != nil {
			return "", "", nil, fmt.Errorf("trace: verdict line %d: bad rank %q", ln+3, fields[3])
		}
		v := core.Verdict{
			Anomaly:   anomaly == 1,
			Level:     core.Level(level),
			Rank:      rank,
			Signature: fields[4],
		}
		if version == 2 && fields[5] != "-" {
			if v.Evidence, err = parseEvidence(fields[5]); err != nil {
				return "", "", nil, fmt.Errorf("trace: verdict line %d: %w", ln+3, err)
			}
		}
		vs = append(vs, v)
	}
	if len(vs) != packages {
		return "", "", nil, fmt.Errorf("trace: verdict document has %d lines, header says %d", len(vs), packages)
	}
	return scenario, fingerprint, vs, nil
}

func parseEvidence(s string) ([]core.LevelEvidence, error) {
	entries := strings.Split(s, ";")
	ev := make([]core.LevelEvidence, 0, len(entries))
	for _, entry := range entries {
		parts := strings.Split(entry, ":")
		if len(parts) != 6 {
			return nil, fmt.Errorf("bad evidence entry %q", entry)
		}
		level, err1 := strconv.Atoi(parts[1])
		scored, err2 := strconv.Atoi(parts[2])
		flagged, err3 := strconv.Atoi(parts[3])
		score, err4 := strconv.ParseFloat(parts[4], 64)
		rank, err5 := strconv.Atoi(parts[5])
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return nil, fmt.Errorf("bad evidence entry %q: %w", entry, err)
			}
		}
		ev = append(ev, core.LevelEvidence{
			Stage:   parts[0],
			Level:   core.Level(level),
			Scored:  scored == 1,
			Flagged: flagged == 1,
			Score:   score,
			Rank:    rank,
		})
	}
	return ev, nil
}

// DiffVerdicts compares two golden-verdict documents and reports the first
// differing line (1-based), or 0 when they are identical.
func DiffVerdicts(a, b []byte) int {
	if bytes.Equal(a, b) {
		return 0
	}
	la := bytes.Split(a, []byte{'\n'})
	lb := bytes.Split(b, []byte{'\n'})
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i + 1
		}
	}
	return min(len(la), len(lb)) + 1
}
