package trace

import (
	"fmt"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/metrics"
)

// episodeGap is the maximum run of differently-labeled packages that still
// joins two runs of the same attack label into one episode. Attack episodes
// interleave normal traffic by design (MSCI/MPCI leave the master's routine
// read commands unlabeled mid-episode), so latency accounting merges runs
// separated by less than two poll cycles.
const episodeGap = 8

// ReplayConfig tunes a replay run. The zero value replays as fast as
// possible through a sequential session over the default two-level stack.
type ReplayConfig struct {
	// Stack describes the detection stack to replay through (levels +
	// fusion policy). Empty means the stack equivalent of Mode.
	Stack core.StackSpec
	// Mode selects the legacy detector levels (default core.ModeCombined);
	// it is consulted only when Stack is empty.
	Mode core.Mode
	// Timed replays on the trace's own timeline (latency mode): package i
	// is delivered Time(i)/Speed after the replay started. False replays as
	// fast as possible (throughput mode).
	Timed bool
	// Speed scales the timeline in timed mode: 2 replays twice as fast as
	// recorded. Default 1.
	Speed float64
	// Engine, when non-nil, drives the batched multi-stream engine instead
	// of a sequential session; the trace becomes one stream.
	Engine *engine.Config
	// Burst, when Engine is non-nil and Burst > 1, admits packages in
	// bursts of up to Burst via Engine.SubmitBatch instead of one Submit
	// per package — the serving daemon's amortized admission path. In
	// timed mode the pacing clock is consulted once per burst (at its
	// first package).
	Burst int
	// Stream is the engine stream key (default: the trace's scenario name).
	Stream string
}

// Result is the outcome of one replay: the verdict stream plus the scored
// summaries the paper reports, detection-latency accounting per attack
// type, and throughput measurements.
type Result struct {
	// Scenario and Fingerprint echo the trace header.
	Scenario, Fingerprint string
	// Verdicts holds one verdict per record, in trace order.
	Verdicts []core.Verdict
	// Confusion and Summary score the verdicts against the trace's labels.
	Confusion metrics.Confusion
	Summary   metrics.Summary
	// PerAttack is the detected ratio per attack type (Table V style).
	PerAttack *metrics.PerAttack
	// ByLevel counts detections per detector level.
	ByLevel map[core.Level]int
	// Latency aggregates per-attack-episode detection latency, measured on
	// the trace's own clock (seconds of recorded time from episode start to
	// the first flagged package).
	Latency *metrics.DetectionLatency
	// TraceSeconds is the recorded duration of the trace.
	TraceSeconds float64
	// Wall is the wall-clock replay duration (decode + classification; in
	// timed mode this includes the pacing sleeps).
	Wall time.Duration
}

// PerSecond returns the replay throughput in packages per second.
func (r *Result) PerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(len(r.Verdicts)) / r.Wall.Seconds()
}

// episode is one contiguous (gap-tolerant) run of same-labeled attack
// packages.
type episode struct {
	label      dataset.AttackType
	start      int // index of the first attack package
	last       int // index of the last attack package seen so far
	detectedAt int // index of the first flagged attack package, or -1
}

// findEpisodes segments the attack packages of a trace into episodes and
// returns them plus the episode index of every package (-1 for normal).
func findEpisodes(pkgs []*dataset.Package) ([]*episode, []int) {
	var eps []*episode
	idx := make([]int, len(pkgs))
	var open *episode
	for i, p := range pkgs {
		idx[i] = -1
		if !p.IsAttack() {
			continue
		}
		if open == nil || open.label != p.Label || i-open.last > episodeGap {
			open = &episode{label: p.Label, start: i, last: i, detectedAt: -1}
			eps = append(eps, open)
		}
		open.last = i
		idx[i] = len(eps) - 1
	}
	return eps, idx
}

// replaySpec resolves the detection stack of a replay: an explicit Stack
// wins (and must not conflict with legacy mode fields); otherwise the
// legacy Mode / Engine.Mode merge decides, exactly as before the stack
// refactor.
func replaySpec(cfg *ReplayConfig) (core.StackSpec, error) {
	if len(cfg.Stack.Stages) > 0 {
		if cfg.Mode != 0 {
			return core.StackSpec{}, fmt.Errorf("trace: replay stack %s conflicts with legacy mode %d",
				cfg.Stack, cfg.Mode)
		}
		if cfg.Engine != nil && cfg.Engine.Mode != 0 {
			return core.StackSpec{}, fmt.Errorf("trace: replay stack %s conflicts with engine mode %d",
				cfg.Stack, cfg.Engine.Mode)
		}
		if cfg.Engine != nil && len(cfg.Engine.Stack.Stages) > 0 {
			return core.StackSpec{}, fmt.Errorf("trace: set the replay stack on ReplayConfig, not EngineConfig")
		}
		return cfg.Stack, cfg.Stack.Validate()
	}
	mode := cfg.Mode
	if cfg.Engine != nil && cfg.Engine.Mode != 0 {
		if mode != 0 && mode != cfg.Engine.Mode {
			return core.StackSpec{}, fmt.Errorf("trace: replay mode %d conflicts with engine mode %d",
				mode, cfg.Engine.Mode)
		}
		mode = cfg.Engine.Mode
	}
	if cfg.Engine != nil && len(cfg.Engine.Stack.Stages) > 0 {
		if mode != 0 {
			return core.StackSpec{}, fmt.Errorf("trace: engine stack %s conflicts with legacy mode %d",
				cfg.Engine.Stack, mode)
		}
		return cfg.Engine.Stack, cfg.Engine.Stack.Validate()
	}
	if mode == 0 {
		mode = core.ModeCombined
	}
	return core.SpecForMode(mode)
}

// Replay drives a recorded trace through a trained framework and scores the
// verdicts. The verdict stream is a pure function of the trace bytes, the
// framework and the stack — identical across runs, replay paths (session
// or engine) and kernel builds — which is what the golden-verdict
// conformance corpus asserts.
func Replay(fw *core.Framework, h Header, recs []*Record, cfg ReplayConfig) (*Result, error) {
	spec, err := replaySpec(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	// The replay clock starts here: decoding the wire frames is part of the
	// replay workload (Wall and PerSecond cover decode + classification).
	start := time.Now()
	pkgs, err := Packages(h, recs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario:    h.Scenario,
		Fingerprint: h.Fingerprint,
		Verdicts:    make([]core.Verdict, len(pkgs)),
		PerAttack:   metrics.NewPerAttack(),
		ByLevel:     make(map[core.Level]int),
		Latency:     metrics.NewDetectionLatency(),
	}
	if len(pkgs) > 0 {
		res.TraceSeconds = pkgs[len(pkgs)-1].Time - pkgs[0].Time
	}
	eps, epIdx := findEpisodes(pkgs)
	observe := func(i int, v core.Verdict) {
		res.Verdicts[i] = v
		if v.Anomaly {
			if ep := epIdx[i]; ep >= 0 && eps[ep].detectedAt < 0 {
				eps[ep].detectedAt = i
			}
		}
	}

	pace := func(i int) {
		if !cfg.Timed || len(pkgs) == 0 {
			return
		}
		due := time.Duration((pkgs[i].Time - pkgs[0].Time) / cfg.Speed * float64(time.Second))
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
	}

	if cfg.Engine == nil {
		sess, err := fw.NewStackSession(spec)
		if err != nil {
			return nil, err
		}
		for i, p := range pkgs {
			pace(i)
			observe(i, sess.Classify(p))
		}
	} else {
		ecfg := *cfg.Engine
		ecfg.Stack = spec
		ecfg.Mode = 0
		stream := cfg.Stream
		if stream == "" {
			stream = h.Scenario
		}
		// One trace is one stream: per-stream order makes Result.Seq the
		// package index, and the engine handler runs on a single shard
		// goroutine, so observe needs no locking; Barrier orders its writes
		// before the accounting below.
		e, err := engine.New(fw, ecfg, func(r engine.Result) {
			observe(int(r.Seq), r.Verdict)
		})
		if err != nil {
			return nil, err
		}
		if cfg.Burst > 1 {
			for i := 0; i < len(pkgs); {
				j := i + cfg.Burst
				if j > len(pkgs) {
					j = len(pkgs)
				}
				pace(i)
				// The engine owns the burst slice once admitted: hand it a
				// fresh copy per burst.
				batch := make([]*dataset.Package, j-i)
				copy(batch, pkgs[i:j])
				if err := e.SubmitBatch(stream, batch); err != nil {
					e.Stop()
					return nil, err
				}
				i = j
			}
		} else {
			for i, p := range pkgs {
				pace(i)
				if err := e.Submit(stream, p); err != nil {
					e.Stop()
					return nil, err
				}
			}
		}
		if err := e.Barrier(); err != nil {
			e.Stop()
			return nil, err
		}
		e.Stop()
	}
	res.Wall = time.Since(start)

	for i, p := range pkgs {
		v := res.Verdicts[i]
		res.Confusion.Add(v.Anomaly, p.IsAttack())
		res.PerAttack.Add(p.Label, v.Anomaly)
		if v.Anomaly {
			res.ByLevel[v.Level]++
		}
	}
	res.Summary = metrics.Summarize(&res.Confusion)
	for _, ep := range eps {
		if ep.detectedAt < 0 {
			res.Latency.AddEpisode(ep.label, false, 0)
			continue
		}
		res.Latency.AddEpisode(ep.label, true, pkgs[ep.detectedAt].Time-pkgs[ep.start].Time)
	}
	return res, nil
}
