package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/modbus"
	"icsdetect/internal/scenario"
)

// Recorder captures labeled frames into a trace. It adapts the two capture
// points of the repo — a scenario simulator's frame sink (RTU traces) and
// the live tap's recorder hook (TCP traces) — onto the Writer, turning
// absolute capture timestamps into record deltas.
//
// A Recorder is not safe for concurrent use: attach it to one simulator or
// one single-client tap. The first error sticks and is returned from every
// subsequent call and from Flush, so a sink wiring that cannot propagate
// errors (the simulator's frame sink) can check Err once at the end.
type Recorder struct {
	w     *Writer
	fmt   Format
	prev  float64
	first bool
	count int
	err   error
}

// NewRecorder writes the header for h to w and returns a recorder
// producing records in h.Format.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	tw, err := NewWriter(w, h)
	if err != nil {
		return nil, err
	}
	return &Recorder{w: tw, fmt: h.Format, first: true}, nil
}

// Count returns the number of records captured so far.
func (r *Recorder) Count() int { return r.count }

// Err returns the first error the recorder hit (nil if none).
func (r *Recorder) Err() error { return r.err }

// Flush flushes the underlying writer and returns the sticky error.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	if err := r.w.Flush(); err != nil {
		r.err = err
	}
	return r.err
}

// Record appends one frame captured at the absolute time t (seconds). The
// delta to the previous record is rounded to whole nanoseconds; the first
// record anchors the trace at delta 0. raw is copied.
func (r *Recorder) Record(raw []byte, t float64, isCmd bool, label dataset.AttackType) error {
	if r.err != nil {
		return r.err
	}
	var delta uint64
	if r.first {
		r.first = false
	} else {
		d := t - r.prev
		if d < 0 {
			d = 0
		}
		delta = uint64(math.Round(d * 1e9))
	}
	r.prev = t
	frame := make([]byte, len(raw))
	copy(frame, raw)
	if err := r.w.Write(&Record{Delta: delta, Label: label, IsCmd: isCmd, Frame: frame}); err != nil {
		r.err = err
		return err
	}
	r.count++
	return nil
}

// RecordSim captures one simulator frame; wire it up with
// sim.SetFrameSink(rec.RecordSim) on an RTU recorder. Simulators model
// benign link glitches after encoding, so when a frame marked corrupt
// still carries a valid CRC the recorder flips the checksum in the recorded
// copy: the trace's wire bytes then carry the corruption themselves, and
// the replayer reconstructs the crc_rate feature from the bytes alone.
func (r *Recorder) RecordSim(f scenario.Frame) {
	if r.err != nil {
		return
	}
	if r.fmt != FormatRTU {
		r.err = fmt.Errorf("trace: simulator frames require an RTU recorder, have %v", r.fmt)
		return
	}
	raw := f.Raw
	if f.Corrupt && len(raw) >= 4 {
		body := raw[:len(raw)-2]
		wire := binary.LittleEndian.Uint16(raw[len(raw)-2:])
		if modbus.CRC16(body) == wire {
			tampered := make([]byte, len(raw))
			copy(tampered, raw)
			binary.LittleEndian.PutUint16(tampered[len(raw)-2:], wire^0xFFFF)
			raw = tampered
		}
	}
	_ = r.Record(raw, f.Time, f.IsCmd, f.Label)
}

// RecordTap captures one tap frame; wire it up with
// proxy.SetRecorder(rec.RecordTap) on a TCP recorder. Tap traffic has no
// ground truth, so records are labeled Normal.
func (r *Recorder) RecordTap(raw []byte, isCmd bool, pkg *dataset.Package) {
	if r.err != nil {
		return
	}
	if r.fmt != FormatTCP {
		r.err = fmt.Errorf("trace: tap frames require a TCP recorder, have %v", r.fmt)
		return
	}
	_ = r.Record(raw, pkg.Time, isCmd, dataset.Normal)
}
