package trace

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/modbus"
	"icsdetect/internal/tap"
)

// Decoder reconstructs the Table I package schema from recorded wire bytes,
// applying exactly the frame→package rules of the live tap
// (tap.RegisterMap.DecodePDU) plus the features only a trace can restore:
// timestamps from the record deltas (accumulated as integer nanoseconds, so
// replayed times never drift between runs) and, for RTU traces, the rolling
// crc_rate recomputed from the recorded checksums with the same monitor the
// simulator logs with. Decoding is pure — the same trace yields bitwise-
// identical packages on every run, the property the golden-verdict
// conformance corpus is built on.
//
// A Decoder carries stream state (clock, CRC window); decode each trace
// with a fresh one.
type Decoder struct {
	header Header
	crc    modbus.CRCRateMonitor
	nanos  uint64
	n      int
}

// NewDecoder returns a decoder for traces with header h.
func NewDecoder(h Header) *Decoder {
	return &Decoder{header: h}
}

// Decode converts the next record into a package.
func (d *Decoder) Decode(rec *Record) (*dataset.Package, error) {
	if d.n > 0 {
		d.nanos += rec.Delta
	}
	d.n++
	pkg := &dataset.Package{
		Length: float64(len(rec.Frame)),
		Time:   float64(d.nanos) / 1e9,
		Label:  rec.Label,
	}
	if rec.IsCmd {
		pkg.CmdResponse = 1
	}
	var pdu *modbus.PDU
	switch d.header.Format {
	case FormatRTU:
		frame, crcOK, err := modbus.DecodeRTU(rec.Frame)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: decode RTU frame: %w", d.n-1, err)
		}
		pkg.CRCRate = d.crc.Observe(!crcOK)
		pkg.Address = float64(frame.Address)
		pdu = frame.PDU
	case FormatTCP:
		frame, err := modbus.DecodeTCP(rec.Frame)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: decode TCP frame: %w", d.n-1, err)
		}
		pkg.Address = float64(frame.Header.UnitID)
		pdu = frame.PDU
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadFormat, uint8(d.header.Format))
	}
	pkg.Function = float64(pdu.Function)
	d.header.Registers.DecodePDU(pkg, pdu, rec.IsCmd)
	return pkg, nil
}

// Packages decodes a whole trace into its package stream.
func Packages(h Header, recs []*Record) ([]*dataset.Package, error) {
	d := NewDecoder(h)
	out := make([]*dataset.Package, 0, len(recs))
	for _, rec := range recs {
		pkg, err := d.Decode(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// TapHeader returns a header for recording live tap traffic with the given
// register map: TCP framing, no fingerprint.
func TapHeader(scenario string, regs tap.RegisterMap) Header {
	return Header{Format: FormatTCP, Scenario: scenario, Registers: regs}
}

// SimHeader returns a header for recording scenario-simulator traffic: RTU
// framing with the simulating testbed's register layout.
func SimHeader(scenario, fingerprint string, regs tap.RegisterMap) Header {
	return Header{
		Format:      FormatRTU,
		Scenario:    scenario,
		Fingerprint: fingerprint,
		Registers:   regs,
	}
}
