// Package trace implements deterministic capture and replay of ICS network
// traffic: a versioned binary trace format holding raw Modbus frames with
// timestamps and ground-truth labels, a Recorder that taps the gas-pipeline
// simulator or the live network tap, a Decoder that reconstructs the Table I
// package schema from the recorded wire bytes exactly as the tap would, and
// a Replayer that drives a trace through the detection framework — either
// as fast as possible (throughput mode) or time-scaled (latency mode).
//
// The point of the subsystem is a stable artifact: a recorded trace replays
// to bitwise-identical packages — and, for a fixed model, bitwise-identical
// verdicts — on every run, every build and every kernel path (SIMD or
// scalar), so detector behaviour can be regression-tested against committed
// golden verdict files instead of re-simulated traffic (see testdata/traces
// at the repository root and the conformance test over it).
//
// # Trace format (version 1)
//
// A trace is a header followed by length-prefixed records. All multi-byte
// fixed-width integers are big-endian; "uvarint" is the unsigned varint of
// encoding/binary.
//
//	trace   := header record*
//	header  := magic "ICSTRACE" (8 bytes)
//	           version u16          // this package writes 1
//	           format  u8           // 1 = Modbus RTU frames, 2 = Modbus/TCP
//	           reserved u8          // 0; readers reject non-zero
//	           scenario    uvarint n, n bytes  // UTF-8 scenario name
//	           fingerprint uvarint n, n bytes  // model fingerprint (hex), may be empty
//	           regmap      12 × i16 // register map, fixed order (see below)
//	record  := uvarint payloadLen, payload
//	payload := delta uvarint       // nanoseconds since previous record (0 for first)
//	           label u8            // dataset.AttackType ground truth
//	           flags u8            // bit 0: master→slave command; others 0
//	           frame bytes         // raw wire frame, rest of the payload
//
// The register map fields are serialized in declaration order of
// tap.RegisterMap: Setpoint, Gain, ResetRate, Deadband, CycleTime, Rate,
// Mode, Scheme, Pump, Solenoid, Pressure, MinRegisters.
//
// Compatibility rules: the major version is the version field — readers
// reject traces whose version or frame format they do not know, and reject
// non-zero reserved header bits or record flag bits, so additions require a
// version bump rather than silently re-interpreted traces. Record payloads
// are length-prefixed, letting tools skip records without decoding frames.
// Timestamps are deltas, so traces are position-independent artifacts: replay
// time bases are chosen by the replayer, and concatenating record streams
// under one header is well-defined.
//
// The fingerprint ties a trace (and its golden verdict file) to the exact
// model it was recorded for; see core.Framework.Fingerprint.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/tap"
)

// Format identifies the wire framing of the recorded frames.
type Format uint8

// Supported frame formats.
const (
	// FormatRTU records Modbus RTU frames (address + PDU + CRC16), the
	// framing of the gas-pipeline testbed link. RTU traces carry authentic
	// CRCs, so the crc_rate feature is reconstructed from the wire bytes.
	FormatRTU Format = 1
	// FormatTCP records Modbus/TCP frames (MBAP header + PDU), the framing
	// the live tap relays. TCP has no CRC; the crc_rate feature is zero.
	FormatTCP Format = 2
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatRTU:
		return "rtu"
	case FormatTCP:
		return "tcp"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// Version is the trace format version this package reads and writes.
const Version = 1

// magic identifies a trace file.
var magic = [8]byte{'I', 'C', 'S', 'T', 'R', 'A', 'C', 'E'}

// Limits guarding the decoder against corrupt or hostile trace files.
const (
	maxNameLen   = 4096
	maxRecordLen = 1 << 20
	// maxRecordDelta caps the gap between consecutive records at 24 hours.
	// SCADA polling runs at sub-second periods; an absurd delta in a trace
	// is corruption, and rejecting it keeps timed replay from sleeping for
	// years and the decoder's nanosecond accumulator from overflowing.
	maxRecordDelta = uint64(24 * 60 * 60 * 1e9)
)

// Errors returned by the trace codec.
var (
	ErrBadMagic   = errors.New("trace: not a trace file (bad magic)")
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrBadFormat  = errors.New("trace: unknown frame format")
	ErrCorrupt    = errors.New("trace: corrupt trace")
)

// Header describes a trace: frame format, scenario identity, the model the
// trace was recorded for, and the register map needed to decode controller
// blocks out of the recorded frames.
type Header struct {
	// Version is the format version (set by the reader; the writer always
	// writes Version).
	Version uint16
	// Format is the wire framing of the records.
	Format Format
	// Scenario names the recorded scenario ("normal", "dos", …).
	Scenario string
	// Fingerprint pins the model the trace's golden verdicts were produced
	// against (core.Framework.Fingerprint); empty when the trace is not tied
	// to a model.
	Fingerprint string
	// Registers maps holding registers to controller-state columns.
	Registers tap.RegisterMap
}

// Record is one captured frame.
type Record struct {
	// Delta is the time since the previous record in nanoseconds (0 for the
	// first record of a trace).
	Delta uint64
	// Label is the ground-truth attack type of the frame.
	Label dataset.AttackType
	// IsCmd marks master→slave traffic.
	IsCmd bool
	// Frame is the raw wire frame in the trace's format.
	Frame []byte
}

// regMapFields flattens a register map in the canonical serialization
// order.
func regMapFields(m *tap.RegisterMap) []*int {
	return []*int{
		&m.Setpoint, &m.Gain, &m.ResetRate, &m.Deadband, &m.CycleTime,
		&m.Rate, &m.Mode, &m.Scheme, &m.Pump, &m.Solenoid, &m.Pressure,
		&m.MinRegisters,
	}
}

// Writer serializes a trace. Create with NewWriter (which writes the
// header), append records with Write, and Flush before closing the
// underlying file.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter writes the header for h to w and returns a record writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Format != FormatRTU && h.Format != FormatTCP {
		return nil, fmt.Errorf("%w: %d", ErrBadFormat, uint8(h.Format))
	}
	if len(h.Scenario) > maxNameLen || len(h.Fingerprint) > maxNameLen {
		return nil, fmt.Errorf("trace: header string too long")
	}
	bw := bufio.NewWriter(w)
	var hdr []byte
	hdr = append(hdr, magic[:]...)
	hdr = binary.BigEndian.AppendUint16(hdr, Version)
	hdr = append(hdr, byte(h.Format), 0)
	hdr = binary.AppendUvarint(hdr, uint64(len(h.Scenario)))
	hdr = append(hdr, h.Scenario...)
	hdr = binary.AppendUvarint(hdr, uint64(len(h.Fingerprint)))
	hdr = append(hdr, h.Fingerprint...)
	regs := h.Registers
	for _, f := range regMapFields(&regs) {
		v := *f
		if v < math.MinInt16 || v > math.MaxInt16 {
			return nil, fmt.Errorf("trace: register map index %d out of int16 range", v)
		}
		hdr = binary.BigEndian.AppendUint16(hdr, uint16(int16(v)))
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(rec *Record) error {
	if rec.Label < 0 || int(rec.Label) > math.MaxUint8 {
		return fmt.Errorf("trace: label %d out of range", rec.Label)
	}
	if rec.Delta > maxRecordDelta {
		return fmt.Errorf("trace: record delta %d ns exceeds the %d ns limit", rec.Delta, maxRecordDelta)
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, rec.Delta)
	w.buf = append(w.buf, byte(rec.Label))
	var flags byte
	if rec.IsCmd {
		flags |= 1
	}
	w.buf = append(w.buf, flags)
	w.buf = append(w.buf, rec.Frame...)
	if len(w.buf) > maxRecordLen {
		return fmt.Errorf("trace: record of %d bytes exceeds limit", len(w.buf))
	}
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(w.buf)))
	if _, err := w.w.Write(lenbuf[:n]); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a trace stream. Create with NewReader (which reads and
// validates the header), then call Next until io.EOF.
type Reader struct {
	r      *bufio.Reader
	header Header
}

// NewReader reads the header from r and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var fixed [4]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	h := Header{
		Version: binary.BigEndian.Uint16(fixed[0:2]),
		Format:  Format(fixed[2]),
	}
	if h.Version != Version {
		return nil, fmt.Errorf("%w: %d (this reader understands %d)", ErrBadVersion, h.Version, Version)
	}
	if h.Format != FormatRTU && h.Format != FormatTCP {
		return nil, fmt.Errorf("%w: %d", ErrBadFormat, uint8(h.Format))
	}
	if fixed[3] != 0 {
		return nil, fmt.Errorf("%w: reserved header byte 0x%02x", ErrCorrupt, fixed[3])
	}
	var err error
	if h.Scenario, err = readString(br); err != nil {
		return nil, err
	}
	if h.Fingerprint, err = readString(br); err != nil {
		return nil, err
	}
	var regbuf [24]byte
	if _, err := io.ReadFull(br, regbuf[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated register map: %v", ErrCorrupt, err)
	}
	for i, f := range regMapFields(&h.Registers) {
		*f = int(int16(binary.BigEndian.Uint16(regbuf[2*i:])))
	}
	return &Reader{r: br, header: h}, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: header string length: %v", ErrCorrupt, err)
	}
	if n > maxNameLen {
		return "", fmt.Errorf("%w: header string of %d bytes", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: truncated header string: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

// Next reads the next record. It returns io.EOF at a clean end of trace;
// a trace truncated mid-record yields ErrCorrupt.
func (r *Reader) Next() (*Record, error) {
	var rec Record
	if _, err := r.NextInto(&rec, nil); err != nil {
		return nil, err
	}
	return &rec, nil
}

// NextInto reads the next record into rec, staging the payload in buf,
// which is grown as needed and returned for reuse. rec.Frame aliases the
// returned buffer and is valid only until the following NextInto call —
// the shape of a consumer that transforms each record immediately (the
// serving daemon's replay ingest decodes straight into a Package), which
// then reads a whole trace with one long-lived buffer instead of two
// allocations per record. A nil buf allocates per call, exactly like Next.
func (r *Reader) NextInto(rec *Record, buf []byte) ([]byte, error) {
	plen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return buf, io.EOF
		}
		return buf, fmt.Errorf("%w: record length: %v", ErrCorrupt, err)
	}
	if plen < 3 || plen > maxRecordLen {
		return buf, fmt.Errorf("%w: record of %d bytes", ErrCorrupt, plen)
	}
	if uint64(cap(buf)) < plen {
		buf = make([]byte, plen)
	}
	payload := buf[:plen]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return buf, fmt.Errorf("%w: truncated record: %v", ErrCorrupt, err)
	}
	delta, n := binary.Uvarint(payload)
	if n <= 0 || len(payload)-n < 2 {
		return buf, fmt.Errorf("%w: record payload", ErrCorrupt)
	}
	if delta > maxRecordDelta {
		return buf, fmt.Errorf("%w: record delta %d ns", ErrCorrupt, delta)
	}
	label := payload[n]
	flags := payload[n+1]
	if flags&^byte(1) != 0 {
		return buf, fmt.Errorf("%w: unknown record flags 0x%02x", ErrCorrupt, flags)
	}
	rec.Delta = delta
	rec.Label = dataset.AttackType(label)
	rec.IsCmd = flags&1 != 0
	rec.Frame = payload[n+2:]
	return buf, nil
}

// ReadAll reads a whole trace: header plus every record.
func ReadAll(r io.Reader) (Header, []*Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var recs []*Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return tr.Header(), recs, nil
		}
		if err != nil {
			return Header{}, nil, err
		}
		recs = append(recs, rec)
	}
}
