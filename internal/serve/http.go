package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// statsResponse is the /stats JSON document: lifetime and interval-delta
// engine counters, per-shard detail, and the daemon's own counters. The
// interval covers the window since the previous /stats scrape (Stats.Since),
// so rates reflect current load instead of being diluted by idle lifetime —
// the whole point of the Since bugfix.
type statsResponse struct {
	// Lifetime aggregates since engine start.
	Lifetime engine.Stats `json:"lifetime"`
	// LifetimeRate is Lifetime.PerSecond().
	LifetimeRate float64 `json:"lifetime_pkg_per_sec"`
	// Interval is the delta since the previous /stats scrape.
	Interval engine.Stats `json:"interval"`
	// IntervalSeconds is the scrape window in seconds; IntervalRate is the
	// mean classification rate over it.
	IntervalSeconds float64 `json:"interval_seconds"`
	IntervalRate    float64 `json:"interval_pkg_per_sec"`
	// MeanBatch is the interval's mean micro-batch width.
	MeanBatch float64 `json:"interval_mean_batch"`
	// Shards is the per-shard detail (queue depths are point-in-time).
	Shards []engine.ShardStats `json:"shards"`
	// Server is the daemon's connection/admission/subscriber counters;
	// ServerInterval is its delta since the previous scrape
	// (ServerStats.Since), in the same window as Interval.
	Server         ServerStats `json:"server"`
	ServerInterval ServerStats `json:"server_interval"`
	// MeanIngestBurst and MeanPublishBatch are the interval's amortization
	// widths: packages per engine admission call and events per published
	// verdict frame.
	MeanIngestBurst  float64 `json:"interval_mean_ingest_burst"`
	MeanPublishBatch float64 `json:"interval_mean_publish_batch"`
	// Subscribers is the per-subscriber detail: queue depth (frames
	// pending), capacity and drops, point-in-time.
	Subscribers []SubscriberStats `json:"subscribers"`
}

// Handler returns the ops endpoint: GET /healthz, GET /stats (JSON, see
// statsResponse), POST /swap?model=NAME&path=FILE (hot-swap from an
// icstrain -checkpoint snapshot on disk, or from a snapshot in the request
// body when no path is given).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/swap", s.handleSwap)
	return mux
}

// ListenHTTP binds the ops endpoint and serves it until Shutdown.
func (s *Server) ListenHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen http: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("serve: server is shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.acceptWG.Add(1)
	s.mu.Unlock()
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		defer s.acceptWG.Done()
		srv.Serve(ln)
		srv.Close()
	}()
	return ln.Addr().String(), nil
}

// handleStats serves the metrics snapshot. Interval deltas are scoped to
// this endpoint's scrape cadence: each call closes the window the previous
// call opened.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cur := s.eng.Stats()
	curServer := s.Stats()
	now := time.Now()
	s.statsMu.Lock()
	prev, prevServer, prevTime := s.lastStats, s.lastServer, s.lastTime
	s.lastStats, s.lastServer, s.lastTime = cur, curServer, now
	s.statsMu.Unlock()

	delta := cur.Since(prev)
	serverDelta := curServer.Since(prevServer)
	window := now.Sub(prevTime)
	resp := statsResponse{
		Lifetime:         cur,
		LifetimeRate:     cur.PerSecond(),
		Interval:         delta,
		IntervalSeconds:  window.Seconds(),
		IntervalRate:     delta.PerSecond(),
		MeanBatch:        delta.MeanBatch(),
		Shards:           s.eng.ShardStats(),
		Server:           curServer,
		ServerInterval:   serverDelta,
		MeanIngestBurst:  serverDelta.MeanIngestBurst(),
		MeanPublishBatch: serverDelta.MeanPublishBatch(),
		Subscribers:      s.SubscriberStats(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleSwap hot-swaps a model from a framework snapshot.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("model")
	var fw *core.Framework
	var err error
	if path := r.URL.Query().Get("path"); path != "" {
		var f *os.File
		if f, err = os.Open(path); err == nil {
			fw, err = core.Load(f)
			f.Close()
		}
	} else {
		fw, err = core.Load(r.Body)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("load framework: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.SwapModel(name, fw); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "swapped %s to %s\n", nameOrDefault(name, s.def.name), fw.Fingerprint())
}

func nameOrDefault(name, def string) string {
	if name == "" {
		return def
	}
	return name
}
