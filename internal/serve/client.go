package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"icsdetect/internal/trace"
)

// This file is the client side of the ingest and subscription protocols:
// what a replay harness (or cmd/icsserved -selftest, or the e2e tests)
// speaks against a running daemon. Live-mode clients are just Modbus
// masters — they need no helper beyond DialLive's handshake.

// ReplayOptions selects the model, stream identity and pacing hooks of a
// Replay call. The zero value replays under the server's default model
// with a server-assigned stream ID.
type ReplayOptions struct {
	// Stream is the engine stream ID; empty lets the server assign one.
	Stream string
	// Model names the server-side model; empty means the default.
	Model string
	// Precision pins the stream's numeric tier ("f32"); empty means the
	// engine default.
	Precision string
	// OnRecord, when non-nil, is called before each record is written
	// (0-based index) — the hook mid-replay orchestration (hot-swap
	// drills) keys on.
	OnRecord func(i int)
	// FlushEvery, with OnRecord set, flushes the connection every N
	// records instead of after every one — per-record hooks without
	// per-record syscalls, the load-generator shape (`icsbench
	// -servebench` stamps send times per record but writes in chunks so
	// the server's burst path sees realistic wire batches). 0 or 1 keeps
	// the per-record flush.
	FlushEvery int
}

// Replay streams a recorded trace to a daemon's ingest listener and
// returns the number of packages the server accepted. The raw argument is
// a complete ICSTRACE byte stream (a testdata .trace file).
func Replay(addr string, raw []byte, opts ReplayOptions) (uint64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("serve: dial ingest: %w", err)
	}
	defer conn.Close()
	hb := appendHello(nil, hello{
		Mode: ModeReplay, Stream: opts.Stream, Model: opts.Model, Precision: opts.Precision,
	})
	if _, err := conn.Write(hb); err != nil {
		return 0, fmt.Errorf("serve: send handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	if err := readStatus(br); err != nil {
		return 0, err
	}
	if opts.OnRecord == nil {
		if _, err := conn.Write(raw); err != nil {
			return 0, fmt.Errorf("serve: send trace: %w", err)
		}
	} else {
		// Record-granular writes so the hook observes replay progress.
		hdr, recs, err := trace.ReadAll(bytes.NewReader(raw))
		if err != nil {
			return 0, fmt.Errorf("serve: parse trace: %w", err)
		}
		tw, err := trace.NewWriter(conn, hdr)
		if err != nil {
			return 0, err
		}
		every := opts.FlushEvery
		if every < 1 {
			every = 1
		}
		for i, rec := range recs {
			opts.OnRecord(i)
			if err := tw.Write(rec); err != nil {
				return 0, fmt.Errorf("serve: send record %d: %w", i, err)
			}
			if (i+1)%every == 0 {
				if err := tw.Flush(); err != nil {
					return 0, fmt.Errorf("serve: send record %d: %w", i, err)
				}
			}
		}
		if err := tw.Flush(); err != nil {
			return 0, fmt.Errorf("serve: flush trace: %w", err)
		}
	}
	// Half-close: the server sees EOF, drains, and answers the trailer.
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return 0, fmt.Errorf("serve: close write: %w", err)
		}
	}
	if err := readStatus(br); err != nil {
		return 0, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("serve: read trailer count: %w", err)
	}
	return count, nil
}

// DialLive opens a live-mode ingest connection: after the returned
// connection is handed back, the caller streams raw MBAP-framed
// Modbus/TCP bytes (modbus.WriteTCPFrame) and closes when done.
func DialLive(addr string, opts ReplayOptions) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial ingest: %w", err)
	}
	hb := appendHello(nil, hello{
		Mode: ModeLive, Stream: opts.Stream, Model: opts.Model, Precision: opts.Precision,
	})
	if _, err := conn.Write(hb); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: send handshake: %w", err)
	}
	if err := readStatus(bufio.NewReader(conn)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Subscription is an attached verdict stream.
type Subscription struct {
	conn net.Conn
	br   *bufio.Reader
}

// Subscribe attaches to a daemon's verdict listener.
func Subscribe(addr string) (*Subscription, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial verdicts: %w", err)
	}
	var b []byte
	b = append(b, subscribeMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, ProtocolVersion)
	if _, err := conn.Write(b); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: send handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	if err := readStatus(br); err != nil {
		conn.Close()
		return nil, err
	}
	return &Subscription{conn: conn, br: br}, nil
}

// Next reads the next event, blocking until one arrives. It returns
// io.EOF when the server flushed and closed the stream (shutdown).
func (s *Subscription) Next() (Event, error) {
	ev, err := readEvent(s.br)
	if err != nil && err != io.EOF {
		return ev, err
	}
	return ev, err
}

// Close detaches the subscriber.
func (s *Subscription) Close() error { return s.conn.Close() }
