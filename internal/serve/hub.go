package serve

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// hub fans classified results out to verdict subscribers. Each subscriber
// owns a bounded channel of pre-encoded events and a writer goroutine; a
// subscriber that cannot keep up loses events (counted per subscriber and
// hub-wide) instead of stalling the shard workers publishing into the hub —
// the same shed-don't-stall discipline the live ingest path applies to the
// engine queues.
type hub struct {
	buffer int

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup

	// drops counts (subscriber, event) pairs lost to full buffers
	// (slow-consumer accounting); delivered counts pairs enqueued. Their sum
	// is publishes × subscribers.
	drops     atomic.Uint64
	delivered atomic.Uint64
}

// subscriber is one verdict stream consumer.
type subscriber struct {
	conn  net.Conn
	ch    chan []byte
	drops atomic.Uint64
}

func newHub(buffer int) *hub {
	if buffer <= 0 {
		buffer = 1024
	}
	return &hub{buffer: buffer, subs: make(map[*subscriber]struct{})}
}

// add registers a handshaken subscriber connection and starts its writer.
// It reports false when the hub has already shut down.
func (h *hub) add(conn net.Conn) bool {
	sub := &subscriber{conn: conn, ch: make(chan []byte, h.buffer)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return false
	}
	h.subs[sub] = struct{}{}
	h.wg.Add(1)
	h.mu.Unlock()
	go h.write(sub)
	return true
}

// remove detaches a subscriber (writer error path). The writer goroutine
// drains and exits on its own; no further events are enqueued.
func (h *hub) remove(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// abandon detaches a subscriber whose connection failed mid-write and
// re-counts the events still queued behind the failure: they were counted
// delivered when publish enqueued them, but they will never reach the
// wire, so each one moves from delivered to drops — keeping both the
// drops+delivered conservation invariant and the close contract ("on the
// wire or counted as drops") honest. Once remove returns no publisher can
// enqueue (publish holds the hub mutex the whole pass), so the
// non-blocking drain below observes the final queue; a concurrent
// hub.close may have closed the channel already, which the drain treats
// as end of queue.
func (h *hub) abandon(sub *subscriber) {
	h.remove(sub)
	for {
		select {
		case _, ok := <-sub.ch:
			if !ok {
				return
			}
			sub.drops.Add(1)
			h.drops.Add(1)
			h.delivered.Add(^uint64(0))
		default:
			return
		}
	}
}

// publish encodes one result and enqueues it to every subscriber,
// dropping (and counting) for subscribers whose buffer is full. It is
// called from shard worker goroutines: per-stream event order is
// preserved because one stream publishes from one shard.
func (h *hub) publish(b []byte) {
	h.mu.Lock()
	for sub := range h.subs {
		select {
		case sub.ch <- b:
			h.delivered.Add(1)
		default:
			sub.drops.Add(1)
			h.drops.Add(1)
		}
	}
	h.mu.Unlock()
}

// write is the per-subscriber writer loop: it streams queued events
// through a buffered writer, flushing whenever the queue runs dry, and
// exits when the hub closes its channel (flushing first) or the peer
// stops accepting writes.
func (h *hub) write(sub *subscriber) {
	defer h.wg.Done()
	defer sub.conn.Close()
	bw := bufio.NewWriter(sub.conn)
	for b := range sub.ch {
		if _, err := bw.Write(b); err != nil {
			h.abandon(sub)
			return
		}
		if len(sub.ch) == 0 {
			if err := bw.Flush(); err != nil {
				h.abandon(sub)
				return
			}
		}
	}
	bw.Flush()
}

// count returns the number of attached subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close flushes and detaches every subscriber and waits for their writers:
// events published before close are on the wire (or counted as drops) when
// it returns. The wait is bounded by grace — a wedged subscriber (a peer
// that stopped reading) parks its writer in a blocking Write, so after
// grace the remaining connections are force-closed to unblock them.
// Publishing after close is a silent no-op.
func (h *hub) close(grace time.Duration) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
		close(sub.ch)
	}
	h.subs = make(map[*subscriber]struct{})
	h.mu.Unlock()

	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		for _, sub := range subs {
			sub.conn.Close()
		}
		<-done
	}
}
