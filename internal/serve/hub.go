package serve

import (
	"bufio"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// frame is one published batch of pre-encoded verdict events: the unit the
// hub fans out, so a subscriber pays one channel operation per batch
// instead of one per event. Frames are pooled and reference-counted — the
// publisher sets refs to the subscriber count before fan-out, and every
// way a frame can leave the fan-out (written to the wire, dropped at a
// full queue, drained by abandon, flushed at writer exit) releases one
// reference; the last release returns the frame and its encode buffer to
// the pool, so steady-state publishing allocates nothing.
type frame struct {
	buf    []byte
	events int
	refs   atomic.Int32
}

// hub fans classified results out to verdict subscribers. Each subscriber
// owns a bounded channel of frames and a writer goroutine; a subscriber
// that cannot keep up loses whole frames (their events counted per
// subscriber and hub-wide) instead of stalling the shard workers
// publishing into the hub — the same shed-don't-stall discipline the live
// ingest path applies to the engine queues.
type hub struct {
	buffer int
	// writeTimeout, when positive, bounds every subscriber socket write: a
	// wedged peer (stopped reading, window closed) fails its writer at the
	// deadline and is abandoned at runtime — with the frames still queued
	// behind the failure re-counted as drops — instead of parking the
	// writer in a blocking Write until shutdown's force-close.
	writeTimeout time.Duration
	pool         sync.Pool

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup

	// drops counts (subscriber, event) pairs lost to full buffers or
	// abandoned writers; delivered counts pairs that reached the wire (or
	// a writer's buffer). Their sum is the Σ over publishes of
	// events × subscribers at publish time.
	drops     atomic.Uint64
	delivered atomic.Uint64
	// publishes counts published frames; publishedEvents the events they
	// carried. publishedEvents/publishes is the mean publish batch width —
	// how much fan-out amortization the tick coalescing actually bought.
	publishes       atomic.Uint64
	publishedEvents atomic.Uint64
}

// subscriber is one verdict stream consumer.
type subscriber struct {
	conn  net.Conn
	ch    chan *frame
	drops atomic.Uint64
}

func newHub(buffer int, writeTimeout time.Duration) *hub {
	if buffer <= 0 {
		buffer = 1024
	}
	return &hub{
		buffer:       buffer,
		writeTimeout: writeTimeout,
		subs:         make(map[*subscriber]struct{}),
	}
}

// newFrame returns an empty frame, reusing a pooled one when available.
// The caller appends encoded events to buf, counts them in events, and
// hands the frame back through publishFrame (which owns it from then on).
func (h *hub) newFrame() *frame {
	if f, ok := h.pool.Get().(*frame); ok {
		return f
	}
	return &frame{}
}

// release resets a frame and returns it to the pool.
func (h *hub) release(f *frame) {
	f.buf = f.buf[:0]
	f.events = 0
	h.pool.Put(f)
}

// unref drops one reference, releasing the frame on the last one.
func (h *hub) unref(f *frame) {
	if f.refs.Add(-1) == 0 {
		h.release(f)
	}
}

// add registers a handshaken subscriber connection and starts its writer.
// It reports false when the hub has already shut down.
func (h *hub) add(conn net.Conn) bool {
	sub := &subscriber{conn: conn, ch: make(chan *frame, h.buffer)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return false
	}
	h.subs[sub] = struct{}{}
	h.wg.Add(1)
	h.mu.Unlock()
	go h.write(sub)
	return true
}

// remove detaches a subscriber (writer error path). The writer goroutine
// drains and exits on its own; no further frames are enqueued.
func (h *hub) remove(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// abandon detaches a subscriber whose connection failed mid-write and
// re-counts the events still queued behind the failure: they were counted
// delivered when publishFrame enqueued them, but they will never reach
// the wire, so each one moves from delivered to drops — keeping both the
// drops+delivered conservation invariant and the close contract ("on the
// wire or counted as drops") honest. Once remove returns no publisher can
// enqueue (publishFrame holds the hub mutex the whole pass), so the
// non-blocking drain below observes the final queue; a concurrent
// hub.close may have closed the channel already, which the drain treats
// as end of queue.
func (h *hub) abandon(sub *subscriber) {
	h.remove(sub)
	for {
		select {
		case f, ok := <-sub.ch:
			if !ok {
				return
			}
			n := uint64(f.events)
			sub.drops.Add(n)
			h.drops.Add(n)
			h.delivered.Add(^(n - 1))
			h.unref(f)
		default:
			return
		}
	}
}

// publishFrame enqueues one frame of events to every subscriber — one
// channel operation per subscriber per batch — dropping (and counting the
// frame's events) for subscribers whose buffer is full. It takes
// ownership of f. It is called from shard worker goroutines: per-stream
// event order is preserved because one stream publishes from one shard,
// and a shard's frames are published in tick order.
func (h *hub) publishFrame(f *frame) {
	h.mu.Lock()
	if h.closed || len(h.subs) == 0 || f.events == 0 {
		h.mu.Unlock()
		h.release(f)
		return
	}
	n := uint64(f.events)
	h.publishes.Add(1)
	h.publishedEvents.Add(n)
	f.refs.Store(int32(len(h.subs)))
	for sub := range h.subs {
		select {
		case sub.ch <- f:
			h.delivered.Add(n)
		default:
			sub.drops.Add(n)
			h.drops.Add(n)
			h.unref(f)
		}
	}
	h.mu.Unlock()
}

// write is the per-subscriber writer loop: it streams queued frames
// through a buffered writer, flushing whenever the queue runs dry, and
// exits when the hub closes its channel (flushing first) or the peer
// stops accepting writes — at the armed deadline, for a wedged peer under
// a write timeout.
func (h *hub) write(sub *subscriber) {
	defer h.wg.Done()
	defer sub.conn.Close()
	bw := bufio.NewWriter(sub.conn)
	for f := range sub.ch {
		if h.writeTimeout > 0 {
			sub.conn.SetWriteDeadline(time.Now().Add(h.writeTimeout))
		}
		_, err := bw.Write(f.buf)
		if err == nil && len(sub.ch) == 0 {
			err = bw.Flush()
		}
		h.unref(f)
		if err != nil {
			h.abandon(sub)
			return
		}
	}
	if h.writeTimeout > 0 {
		sub.conn.SetWriteDeadline(time.Now().Add(h.writeTimeout))
	}
	bw.Flush()
}

// count returns the number of attached subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// SubscriberStats describes one attached verdict subscriber (see
// Server.SubscriberStats and /stats).
type SubscriberStats struct {
	// Addr is the subscriber's remote address.
	Addr string `json:"addr"`
	// QueueDepth and QueueCap describe the subscriber's bounded frame
	// queue at snapshot time.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Drops counts the events this subscriber lost — enqueue-time drops on
	// a full queue plus frames re-counted when the subscriber was
	// abandoned mid-write.
	Drops uint64 `json:"drops"`
}

// subscriberStats snapshots every attached subscriber, ordered by remote
// address for stable output.
func (h *hub) subscriberStats() []SubscriberStats {
	h.mu.Lock()
	out := make([]SubscriberStats, 0, len(h.subs))
	for sub := range h.subs {
		out = append(out, SubscriberStats{
			Addr:       sub.conn.RemoteAddr().String(),
			QueueDepth: len(sub.ch),
			QueueCap:   cap(sub.ch),
			Drops:      sub.drops.Load(),
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// close flushes and detaches every subscriber and waits for their writers:
// frames published before close are on the wire (or counted as drops) when
// it returns. The wait is bounded by grace — a wedged subscriber (a peer
// that stopped reading) parks its writer in a blocking Write, so after
// grace the remaining connections are force-closed to unblock them.
// Publishing after close is a silent no-op.
func (h *hub) close(grace time.Duration) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
		close(sub.ch)
	}
	h.subs = make(map[*subscriber]struct{})
	h.mu.Unlock()

	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		for _, sub := range subs {
			sub.conn.Close()
		}
		<-done
	}
}
