package serve_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/modbus"
	"icsdetect/internal/serve"
	"icsdetect/internal/trace"
)

// corpusEpisodes are the committed per-episode traces of each scenario
// corpus (kept in sync with the root conformance test).
var corpusEpisodes = []string{"normal", "nmri", "cmri", "msci", "mpci", "mfci", "dos", "recon"}

// serveTrace is one committed trace as the daemon tests consume it: the
// raw on-disk bytes (streamed verbatim over ingest connections), the
// parsed header, the record count, and the committed golden verdicts.
type serveTrace struct {
	name    string
	raw     []byte
	header  trace.Header
	records int
	golden  []byte
}

// serveCorpus is one scenario's committed model plus traces.
type serveCorpus struct {
	scenario string
	fw       *core.Framework
	traces   []serveTrace
}

// loadServeCorpus loads a committed golden corpus directory.
func loadServeCorpus(t *testing.T, scenarioName, dir string) *serveCorpus {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "model.fw"))
	if err != nil {
		t.Fatalf("open %s corpus model: %v", scenarioName, err)
	}
	fw, err := core.Load(f)
	f.Close()
	if err != nil {
		t.Fatalf("load %s corpus model: %v", scenarioName, err)
	}
	c := &serveCorpus{scenario: scenarioName, fw: fw}
	for _, name := range corpusEpisodes {
		raw, err := os.ReadFile(filepath.Join(dir, name+".trace"))
		if err != nil {
			t.Fatalf("read %s trace %s: %v", scenarioName, name, err)
		}
		header, records, err := trace.ReadAll(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("parse %s trace %s: %v", scenarioName, name, err)
		}
		golden, err := os.ReadFile(filepath.Join(dir, name+".verdicts"))
		if err != nil {
			t.Fatalf("read %s goldens for %s: %v", scenarioName, name, err)
		}
		c.traces = append(c.traces, serveTrace{
			name: name, raw: raw, header: header, records: len(records), golden: golden,
		})
	}
	return c
}

// loadCorpora loads both scenario corpora (relative to this package).
func loadCorpora(t *testing.T) []*serveCorpus {
	t.Helper()
	root := filepath.Join("..", "..", "testdata", "traces")
	return []*serveCorpus{
		loadServeCorpus(t, "gaspipeline", root),
		loadServeCorpus(t, "watertank", filepath.Join(root, "watertank")),
	}
}

// cloneFramework round-trips a framework through Save/Load: identical
// weights (and fingerprint), distinct pointer — the shape of a hot-swap
// reload from an icstrain checkpoint.
func cloneFramework(t *testing.T, fw *core.Framework) *core.Framework {
	t.Helper()
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fw2
}

// newTestServer boots a server over the given corpora with ingest and
// verdict listeners on ephemeral ports.
func newTestServer(t *testing.T, cfg serve.Config, corpora []*serveCorpus) (srv *serve.Server, ingest, verdicts string) {
	t.Helper()
	if cfg.Models == nil {
		for _, c := range corpora {
			cfg.Models = append(cfg.Models, serve.Model{Name: c.scenario, Framework: c.fw})
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	if ingest, err = srv.ListenIngest("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if verdicts, err = srv.ListenVerdicts("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, ingest, verdicts
}

// TestServeReplayEndToEnd is the acceptance-criteria drill: hundreds of
// concurrent TCP connections replay both scenario corpora through one
// daemon, a model hot-swap lands mid-replay, the daemon drains on
// Shutdown, and every stream's verdicts — received over the subscription
// socket — match the committed goldens byte for byte.
func TestServeReplayEndToEnd(t *testing.T) {
	// The drill runs twice: at full scale over the default burst ingest
	// path (SubmitBatchFor admission, coalesced verdict frames), and at
	// reduced scale over the per-package legacy path (IngestBurst: 1, one
	// submit and one published event per package). Both must reproduce the
	// committed goldens byte for byte.
	t.Run("burst", func(t *testing.T) {
		copies := 16 // 16 traces × 16 copies = 256 concurrent connections
		if testing.Short() {
			copies = 3
		}
		replayEndToEnd(t, 0, copies)
	})
	t.Run("per-package", func(t *testing.T) {
		copies := 4
		if testing.Short() {
			copies = 2
		}
		replayEndToEnd(t, 1, copies)
	})
}

func replayEndToEnd(t *testing.T, ingestBurst, copies int) {
	corpora := loadCorpora(t)

	srv, ingest, verdicts := newTestServer(t, serve.Config{
		Engine:           engine.Config{MaxBatch: 16, QueueDepth: 64},
		SubscriberBuffer: 1 << 15,
		IngestBurst:      ingestBurst,
		DrainGrace:       time.Minute,
	}, corpora)

	sub, err := serve.Subscribe(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	var subMu sync.Mutex
	received := make(map[string][]core.Verdict)
	subDone := make(chan error, 1)
	go func() {
		for {
			ev, err := sub.Next()
			if err == io.EOF {
				subDone <- nil
				return
			}
			if err != nil {
				subDone <- err
				return
			}
			subMu.Lock()
			if ev.Seq != uint64(len(received[ev.Stream])) {
				subMu.Unlock()
				subDone <- fmt.Errorf("stream %s: event seq %d out of order", ev.Stream, ev.Seq)
				return
			}
			received[ev.Stream] = append(received[ev.Stream], ev.Verdict)
			subMu.Unlock()
		}
	}()

	// One designated connection triggers the hot-swap partway through its
	// replay; the swap lands while most connections are mid-flight.
	swapAt := make(chan struct{})
	var swapOnce sync.Once

	type job struct {
		c      *serveCorpus
		tr     serveTrace
		stream string
		first  bool
	}
	var jobs []job
	for _, c := range corpora {
		for _, tr := range c.traces {
			for copy := 0; copy < copies; copy++ {
				jobs = append(jobs, job{
					c: c, tr: tr,
					stream: fmt.Sprintf("%s-%s-%02d", c.scenario, tr.name, copy),
					first:  c.scenario == "gaspipeline" && tr.name == "normal" && copy == 0,
				})
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			opts := serve.ReplayOptions{Stream: j.stream, Model: j.c.scenario}
			if j.first {
				opts.OnRecord = func(i int) {
					if i == j.tr.records/2 {
						swapOnce.Do(func() { close(swapAt) })
					}
				}
			}
			n, err := serve.Replay(ingest, j.tr.raw, opts)
			if err != nil {
				errs <- fmt.Errorf("%s: %v", j.stream, err)
				return
			}
			if n != uint64(j.tr.records) {
				errs <- fmt.Errorf("%s: server accepted %d of %d packages", j.stream, n, j.tr.records)
			}
		}(j)
	}

	// Mid-replay hot-swap: reload the gas model from a snapshot round-trip
	// (same weights, new framework value) and cut over behind a barrier.
	<-swapAt
	if err := srv.SwapModel("gaspipeline", cloneFramework(t, corpora[0].fw)); err != nil {
		t.Errorf("mid-replay SwapModel: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Graceful drain: every admitted package classified and flushed to the
	// subscriber, which then sees a clean EOF.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-subDone; err != nil {
		t.Fatal(err)
	}
	sub.Close()

	if got := len(received); got != len(jobs) {
		t.Fatalf("subscriber saw %d streams, want %d", got, len(jobs))
	}
	for _, j := range jobs {
		vs := received[j.stream]
		doc := trace.FormatVerdicts(j.tr.header.Scenario, j.tr.header.Fingerprint, vs)
		if line := trace.DiffVerdicts(j.tr.golden, doc); line != 0 {
			t.Errorf("%s: verdict stream differs from goldens at line %d", j.stream, line)
		}
	}

	est := srv.Engine().Stats()
	if est.HandlerPanics != 0 {
		t.Errorf("HandlerPanics = %d", est.HandlerPanics)
	}
	if est.Released != uint64(len(jobs)) {
		t.Errorf("Released = %d, want %d (one per connection)", est.Released, len(jobs))
	}
	if est.ActiveStreams() != 0 {
		t.Errorf("ActiveStreams = %d after drain, want 0", est.ActiveStreams())
	}
	sst := srv.Stats()
	if sst.Shed != 0 || sst.SubscriberDrops != 0 {
		t.Errorf("drops during drain: shed=%d subscriberDrops=%d", sst.Shed, sst.SubscriberDrops)
	}
	if sst.ModelSwaps != 1 {
		t.Errorf("ModelSwaps = %d, want 1", sst.ModelSwaps)
	}
	if sst.ActiveConns != 0 {
		t.Errorf("ActiveConns = %d after drain", sst.ActiveConns)
	}
	var records uint64
	for _, j := range jobs {
		records += uint64(j.tr.records)
	}
	if sst.IngestRecords != records || sst.IngestBurstPkgs != records {
		t.Errorf("ingest counters: records=%d burstPkgs=%d, want %d both",
			sst.IngestRecords, sst.IngestBurstPkgs, records)
	}
	if sst.IngestBytes == 0 {
		t.Error("IngestBytes = 0 after replaying every corpus")
	}
	if sst.HubPublishedEvents != records {
		t.Errorf("HubPublishedEvents = %d, want %d", sst.HubPublishedEvents, records)
	}
	if ingestBurst == 1 && sst.HubPublishes != records {
		t.Errorf("per-package path published %d frames for %d events, want one frame per event",
			sst.HubPublishes, records)
	}
}

// TestServeHandshakeErrors drills the rejection paths: bad magic, unknown
// model, duplicate stream claim, bad precision, fingerprint mismatch.
func TestServeHandshakeErrors(t *testing.T) {
	corpora := loadCorpora(t)
	_, ingest, _ := newTestServer(t, serve.Config{}, corpora)
	gas := corpora[0]

	t.Run("bad-magic", func(t *testing.T) {
		conn, err := net.Dial("tcp", ingest)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write([]byte("HTTP/1.1 GET /\r\n"))
		br := bufio.NewReader(conn)
		if code, err := br.ReadByte(); err != nil || code == 0 {
			t.Errorf("bad magic answered code=%d err=%v, want rejection", code, err)
		}
	})
	t.Run("unknown-model", func(t *testing.T) {
		if _, err := serve.Replay(ingest, gas.traces[0].raw, serve.ReplayOptions{Model: "no-such"}); err == nil {
			t.Error("unknown model accepted")
		}
	})
	t.Run("bad-precision", func(t *testing.T) {
		if _, err := serve.Replay(ingest, gas.traces[0].raw, serve.ReplayOptions{Precision: "f8"}); err == nil {
			t.Error("unknown precision accepted")
		}
	})
	t.Run("duplicate-stream", func(t *testing.T) {
		conn, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "dup"})
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "dup"}); err == nil {
			t.Error("second connection claimed a live stream ID")
		}
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		// A gas trace against the watertank model: the trace pins its model
		// by fingerprint, so the server must reject rather than mis-score.
		if _, err := serve.Replay(ingest, gas.traces[0].raw, serve.ReplayOptions{Model: "watertank"}); err == nil {
			t.Error("fingerprint mismatch accepted")
		}
	})
}

// TestServeLiveIngest drives the live Modbus path: MBAP frames in, verdict
// events out, with command/response direction inferred from transaction
// IDs, and load shed (not stalled) when the engine queue is full behind a
// blocked handler.
func TestServeLiveIngest(t *testing.T) {
	corpora := loadCorpora(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	blocked := make(chan struct{})
	var dirMu sync.Mutex
	var directions []float64
	srv, ingest, _ := newTestServer(t, serve.Config{
		Models: []serve.Model{{
			Name: "gaspipeline", Framework: corpora[0].fw, Registers: gaspipeline.Registers(),
		}},
		Engine: engine.Config{Shards: 1, MaxBatch: 4, QueueDepth: 4},
		// Pin the per-package admission path: this test's shed count and
		// strict command/response alternation depend on packages being
		// admitted (and dropped) one at a time. The burst path's whole-burst
		// shed semantics get their own test below.
		IngestBurst: 1,
		OnResult: func(r engine.Result) {
			dirMu.Lock()
			directions = append(directions, r.Package.CmdResponse)
			dirMu.Unlock()
			gateOnce.Do(func() { close(blocked) })
			<-gate
		},
	}, corpora[:1])

	conn, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "plc-9"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One polling cycle: command (unseen TID) then response (same TID).
	const frames = 20
	for i := 0; i < frames/2; i++ {
		tid := uint16(i + 1)
		cmd := &modbus.TCPFrame{
			Header: modbus.MBAPHeader{TransactionID: tid, UnitID: 4},
			PDU:    modbus.ReadRequest(modbus.FuncReadHoldingRegisters, 0, 8),
		}
		resp := &modbus.TCPFrame{
			Header: modbus.MBAPHeader{TransactionID: tid, UnitID: 4},
			PDU:    modbus.ReadRegistersResponse(modbus.FuncReadHoldingRegisters, make([]uint16, 8)),
		}
		if err := modbus.WriteTCPFrame(conn, cmd); err != nil {
			t.Fatal(err)
		}
		if err := modbus.WriteTCPFrame(conn, resp); err != nil {
			t.Fatal(err)
		}
	}

	// The handler is blocked on the first package: the shard queue fills
	// and the live path must shed the overflow rather than stall.
	<-blocked
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.Stats()
		if st.Live+st.Shed == frames {
			if st.Shed == 0 {
				t.Errorf("no packages shed behind a blocked handler (live=%d)", st.Live)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live+shed = %d+%d, want %d admitted-or-shed", st.Live, st.Shed, frames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	conn.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Direction heuristic: delivered packages alternate command/response
	// (shedding only truncates the tail of what the single stream saw in
	// order — it never reorders).
	dirMu.Lock()
	defer dirMu.Unlock()
	if len(directions) == 0 {
		t.Fatal("no live packages classified")
	}
	for i, d := range directions {
		want := float64(0)
		if i%2 == 0 {
			want = 1 // commands first
		}
		if d != want {
			t.Fatalf("package %d: CmdResponse = %v, want %v", i, d, want)
		}
	}
}

// TestServeLiveBurstSheds drives the live burst path: the handler wakes
// once per buffered run of MBAP frames, admits the whole burst with one
// TrySubmitBatchFor, and a full shard queue drops the whole burst —
// every frame is accounted live or shed, bursting actually amortizes
// (fewer admission calls than frames), and the classified packages stay
// in wire order.
func TestServeLiveBurstSheds(t *testing.T) {
	corpora := loadCorpora(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	blocked := make(chan struct{})
	var resMu sync.Mutex
	var times []float64
	srv, ingest, _ := newTestServer(t, serve.Config{
		Models: []serve.Model{{
			Name: "gaspipeline", Framework: corpora[0].fw, Registers: gaspipeline.Registers(),
		}},
		Engine:      engine.Config{Shards: 1, MaxBatch: 4, QueueDepth: 1},
		IngestBurst: 4,
		OnResult: func(r engine.Result) {
			resMu.Lock()
			times = append(times, r.Package.Time)
			resMu.Unlock()
			gateOnce.Do(func() { close(blocked) })
			<-gate
		},
	}, corpora[:1])

	conn, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "plc-burst"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Write every frame in one syscall so the server's first blocking read
	// finds the rest already buffered: the drain loop forms real bursts.
	const frames = 200
	var wire bytes.Buffer
	for i := 0; i < frames/2; i++ {
		tid := uint16(i + 1)
		cmd := &modbus.TCPFrame{
			Header: modbus.MBAPHeader{TransactionID: tid, UnitID: 4},
			PDU:    modbus.ReadRequest(modbus.FuncReadHoldingRegisters, 0, 8),
		}
		resp := &modbus.TCPFrame{
			Header: modbus.MBAPHeader{TransactionID: tid, UnitID: 4},
			PDU:    modbus.ReadRegistersResponse(modbus.FuncReadHoldingRegisters, make([]uint16, 8)),
		}
		if err := modbus.WriteTCPFrame(&wire, cmd); err != nil {
			t.Fatal(err)
		}
		if err := modbus.WriteTCPFrame(&wire, resp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(wire.Bytes()); err != nil {
		t.Fatal(err)
	}

	// The handler blocks on the first package; with QueueDepth 1 the later
	// bursts must shed whole — every frame accounted, none stalling the
	// wire.
	<-blocked
	deadline := time.Now().Add(30 * time.Second)
	var st serve.ServerStats
	for {
		st = srv.Stats()
		if st.Live+st.Shed == frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live+shed = %d+%d, want %d admitted-or-shed", st.Live, st.Shed, frames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Shed == 0 {
		t.Errorf("no bursts shed behind a blocked handler (live=%d)", st.Live)
	}
	if st.Live == 0 {
		t.Error("no bursts admitted")
	}
	if st.IngestRecords != frames || st.IngestBurstPkgs != frames {
		t.Errorf("ingest counters: records=%d burstPkgs=%d, want %d both",
			st.IngestRecords, st.IngestBurstPkgs, frames)
	}
	if st.IngestBursts >= frames {
		t.Errorf("IngestBursts = %d for %d frames: live path never formed a burst", st.IngestBursts, frames)
	}
	close(gate)
	conn.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Whole-burst shedding only truncates contiguous runs: the classified
	// packages must keep wire order, visible in their monotonic decode
	// timestamps.
	resMu.Lock()
	defer resMu.Unlock()
	if len(times) == 0 {
		t.Fatal("no live packages classified")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("package %d decoded at %v after package %d at %v: wire order lost",
				i, times[i], i-1, times[i-1])
		}
	}
}

// TestServeHotSwapSemantics: connections accepted after a SwapModel bind
// the new framework (a stale-fingerprint trace is rejected), while a
// connection alive across the swap keeps its pinned framework and still
// reproduces the goldens of the old model.
func TestServeHotSwapSemantics(t *testing.T) {
	corpora := loadCorpora(t)
	gas, wt := corpora[0], corpora[1]

	var mu sync.Mutex
	verdicts := make(map[string][]core.Verdict)
	srv, ingest, _ := newTestServer(t, serve.Config{
		Models: []serve.Model{{Name: "gaspipeline", Framework: gas.fw}},
		OnResult: func(r engine.Result) {
			mu.Lock()
			verdicts[r.Stream] = append(verdicts[r.Stream], r.Verdict)
			mu.Unlock()
		},
	}, corpora[:1])

	// Start a replay that pauses mid-trace, swap the model underneath it
	// to a different framework entirely, then let it finish.
	tr := gas.traces[0]
	swapped := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := serve.Replay(ingest, tr.raw, serve.ReplayOptions{
			Stream: "survivor",
			OnRecord: func(i int) {
				if i == tr.records/2 {
					close(swapped)
					<-resume
				}
			},
		})
		done <- err
	}()
	<-swapped
	if err := srv.SwapModel("gaspipeline", wt.fw); err != nil {
		t.Fatalf("SwapModel: %v", err)
	}
	// A connection accepted now binds the watertank framework: the gas
	// trace's pinned fingerprint no longer matches.
	if _, err := serve.Replay(ingest, tr.raw, serve.ReplayOptions{Stream: "stale"}); err == nil {
		t.Error("post-swap connection still bound the old framework")
	}
	// ...while the watertank corpus replays cleanly against the swapped-in
	// model.
	if n, err := serve.Replay(ingest, wt.traces[0].raw, serve.ReplayOptions{Stream: "fresh"}); err != nil {
		t.Errorf("post-swap replay under the new framework: %v", err)
	} else if n != uint64(wt.traces[0].records) {
		t.Errorf("post-swap replay accepted %d of %d", n, wt.traces[0].records)
	}
	close(resume)
	if err := <-done; err != nil {
		t.Fatalf("mid-swap replay: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	doc := trace.FormatVerdicts(tr.header.Scenario, tr.header.Fingerprint, verdicts["survivor"])
	if line := trace.DiffVerdicts(tr.golden, doc); line != 0 {
		t.Errorf("stream alive across the swap diverged from its model's goldens at line %d", line)
	}
	wtr := wt.traces[0]
	wdoc := trace.FormatVerdicts(wtr.header.Scenario, wtr.header.Fingerprint, verdicts["fresh"])
	if line := trace.DiffVerdicts(wtr.golden, wdoc); line != 0 {
		t.Errorf("post-swap stream diverged from the new model's goldens at line %d", line)
	}
}

// TestServeConcurrentLifecycle is the race canary for the serving plane:
// concurrent accepts, replays, releases, hot-swaps, subscriber churn and
// stats scrapes against one daemon, then a drain — run under -race by
// make race-quick.
func TestServeConcurrentLifecycle(t *testing.T) {
	corpora := loadCorpora(t)
	srv, ingest, verdicts := newTestServer(t, serve.Config{
		Engine:           engine.Config{MaxBatch: 8, QueueDepth: 32},
		SubscriberBuffer: 1 << 14,
		DrainGrace:       time.Minute,
	}, corpora)

	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Subscriber churn: attach, read a little, detach, repeat.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := serve.Subscribe(verdicts)
			if err != nil {
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := sub.Next(); err != nil {
					break
				}
			}
			sub.Close()
		}
	}()
	// Stats scrapes.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = srv.Stats()
				_ = srv.Engine().Stats()
				_ = srv.Engine().ShardStats()
			}
		}
	}()
	// Hot-swap churn on both models.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := corpora[i%len(corpora)]
			if err := srv.SwapModel(c.scenario, c.fw); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Replay workers: several rounds of connection churn per trace so
	// accept/claim/release cycles overlap with everything above. Stream IDs
	// are reused round to round, exercising Release-then-rebind.
	var wg sync.WaitGroup
	var failed atomic.Bool
	rounds := 3
	if testing.Short() {
		rounds = 2
	}
	for w, c := range map[int]*serveCorpus{0: corpora[0], 1: corpora[1]} {
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(w, k int, c *serveCorpus) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					tr := c.traces[(k+r)%len(c.traces)]
					stream := fmt.Sprintf("W%d-%d", w, k)
					if _, err := serve.Replay(ingest, tr.raw, serve.ReplayOptions{
						Stream: stream, Model: c.scenario,
					}); err != nil {
						t.Errorf("replay %s round %d: %v", stream, r, err)
						failed.Store(true)
						return
					}
				}
			}(w, k, c)
		}
	}
	wg.Wait()
	close(stop)
	// Shutdown before joining the aux goroutines: the subscriber-churn
	// goroutine can be parked in Next() on an idle stream, and the drain's
	// hub close is what EOFs it loose.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	aux.Wait()
	if failed.Load() {
		t.FailNow()
	}
	if st := srv.Engine().Stats(); st.HandlerPanics != 0 {
		t.Errorf("HandlerPanics = %d", st.HandlerPanics)
	}
}

// TestServeIdleTimeoutReleasesWedgedStream: a live-mode peer that
// completes the handshake — claiming a stream ID, an engine stream and a
// handler goroutine — and then goes silent must be dropped once
// Config.IdleTimeout expires: the connection closes, the engine stream is
// released, and the stream ID can be claimed again. This is the
// regression test for the half-open-peer leak: without an idle read
// deadline the wedged connection held all three forever.
func TestServeIdleTimeoutReleasesWedgedStream(t *testing.T) {
	corpora := loadCorpora(t)
	srv, ingest, _ := newTestServer(t, serve.Config{
		Models: []serve.Model{{
			Name: "gaspipeline", Framework: corpora[0].fw, Registers: gaspipeline.Registers(),
		}},
		IdleTimeout: 150 * time.Millisecond,
	}, corpora[:1])
	base := srv.Engine().Stats().ActiveStreams()

	conn, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "wedge"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One frame after the handshake: the deadline re-arms on every read,
	// so an active peer is never cut off — only the silence that follows.
	f := &modbus.TCPFrame{
		Header: modbus.MBAPHeader{TransactionID: 1, UnitID: 4},
		PDU:    modbus.ReadRequest(modbus.FuncReadHoldingRegisters, 0, 8),
	}
	if err := modbus.WriteTCPFrame(conn, f); err != nil {
		t.Fatal(err)
	}

	// Go silent. The server must notice on its own — the client never
	// closes — and release the connection slot and the engine stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.ActiveConns == 0 && srv.Engine().Stats().ActiveStreams() == base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged live peer still holds conns=%d extra-streams=%d after idle timeout",
				st.ActiveConns, srv.Engine().Stats().ActiveStreams()-base)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The stream ID is free again: a second claim, which the
	// duplicate-stream guard rejects while the first holds it, succeeds.
	conn2, err := serve.DialLive(ingest, serve.ReplayOptions{Stream: "wedge"})
	if err != nil {
		t.Fatalf("re-claim released stream: %v", err)
	}
	conn2.Close()
}
