package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/modbus"
	"icsdetect/internal/tap"
	"icsdetect/internal/trace"
)

// Model is one named detection model the daemon serves: a trained
// framework plus the register layout of the devices it monitors. Ingest
// connections select a model by name in their handshake; the first model
// of a Config is the default for connections that name none.
type Model struct {
	// Name is the handshake name ("gaspipeline", "watertank", …).
	Name string
	// Framework is the trained framework connections bind to. Hot-swap
	// (SwapModel) replaces it for connections accepted afterwards.
	Framework *core.Framework
	// Registers decodes live Modbus frames into the Table I parameter
	// columns (replay traces carry their own map in the trace header).
	Registers tap.RegisterMap
}

// Config configures a Server.
type Config struct {
	// Engine tunes the embedded detection engine (shards, batch width,
	// queue depth, stack).
	Engine engine.Config
	// Models are the served models; at least one. The first is the
	// default.
	Models []Model
	// SubscriberBuffer bounds each verdict subscriber's event queue; a
	// subscriber that falls further behind loses events (counted, never
	// blocking the engine). Default: 1024.
	SubscriberBuffer int
	// DrainGrace bounds how long Shutdown waits for ingest connections to
	// finish before force-closing them. Default: 5s.
	DrainGrace time.Duration
	// IdleTimeout, when positive, bounds how long an ingest connection may
	// go without delivering a byte before the server gives up on it. A
	// half-open live-mode peer (silent TCP, no FIN) would otherwise hold
	// its claimed stream ID, its engine stream state and its handler
	// goroutine forever; on expiry the connection closes and the stream
	// releases like any other disconnect. Zero disables the deadline
	// (replay feeds from slow storage may legitimately stall).
	IdleTimeout time.Duration
	// OnResult, when non-nil, observes every classified result before it
	// is fanned out to subscribers — a test and embedding hook, called on
	// shard goroutines under the engine Handler contract.
	OnResult func(engine.Result)
}

// modelEntry is the server's mutable slot for one served model. The
// framework pointer is read at connection accept (and pinned for the
// connection's lifetime — a hot-swap never re-scores a live stream) and
// written by SwapModel.
type modelEntry struct {
	name string
	mu   sync.RWMutex
	fw   *core.Framework
	regs tap.RegisterMap

	swaps atomic.Uint64
}

// current returns the entry's framework and register map.
func (m *modelEntry) current() (*core.Framework, tap.RegisterMap) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fw, m.regs
}

// Server is the wire-to-verdict daemon: engine, ingest listener, verdict
// hub and ops endpoint. Create with New, attach listeners with
// ListenIngest / ListenVerdicts / ListenHTTP, stop with Shutdown.
type Server struct {
	cfg    Config
	eng    *engine.Engine
	hub    *hub
	models map[string]*modelEntry
	def    *modelEntry

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	active    map[string]net.Conn // live ingest streams, by stream ID
	ingestWG  sync.WaitGroup
	acceptWG  sync.WaitGroup

	nextID atomic.Uint64
	// Connection and admission counters (see ServerStats).
	accepted atomic.Uint64
	rejected atomic.Uint64
	replayed atomic.Uint64
	live     atomic.Uint64
	shed     atomic.Uint64

	statsMu   sync.Mutex
	lastStats engine.Stats
	lastTime  time.Time
}

// ServerStats is a point-in-time snapshot of the daemon's own counters,
// alongside the engine's Stats.
type ServerStats struct {
	// ActiveConns is the number of ingest connections currently serving;
	// AcceptedConns and RejectedConns count handshakes over the lifetime.
	ActiveConns, AcceptedConns, RejectedConns uint64
	// Replayed and Live count packages admitted per ingest mode; Shed
	// counts live packages dropped on a full shard queue.
	Replayed, Live, Shed uint64
	// Subscribers is the number of attached verdict subscribers;
	// SubscriberDrops counts events lost to slow subscribers.
	Subscribers     uint64
	SubscriberDrops uint64
	// ModelSwaps counts SwapModel cutovers across all models.
	ModelSwaps uint64
}

// New builds a server and starts its engine. The caller owns no goroutines
// yet — attach listeners to accept traffic.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		hub:      newHub(cfg.SubscriberBuffer),
		models:   make(map[string]*modelEntry, len(cfg.Models)),
		active:   make(map[string]net.Conn),
		lastTime: time.Now(),
	}
	for _, m := range cfg.Models {
		if m.Name == "" {
			return nil, fmt.Errorf("serve: model with empty name")
		}
		if m.Framework == nil {
			return nil, fmt.Errorf("serve: model %q has no framework", m.Name)
		}
		if _, dup := s.models[m.Name]; dup {
			return nil, fmt.Errorf("serve: model %q configured twice", m.Name)
		}
		entry := &modelEntry{name: m.Name, fw: m.Framework, regs: m.Registers}
		s.models[m.Name] = entry
		if s.def == nil {
			s.def = entry
		}
	}
	eng, err := engine.New(cfg.Models[0].Framework, cfg.Engine, s.handleResult)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// Non-default models must support the engine's stack too, fail-fast at
	// startup rather than on their first connection.
	for _, m := range cfg.Models[1:] {
		if _, err := m.Framework.NewStack(eng.StackSpec()); err != nil {
			eng.Stop()
			return nil, fmt.Errorf("serve: model %q: %w", m.Name, err)
		}
	}
	return s, nil
}

// Engine exposes the embedded engine (stats, barriers) to embedders and
// tests.
func (s *Server) Engine() *engine.Engine { return s.eng }

// handleResult is the engine Handler: observe, encode once, fan out.
func (s *Server) handleResult(r engine.Result) {
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
	s.hub.publish(appendEvent(nil, r))
}

// ListenIngest binds the ingest listener and starts accepting device
// connections. It returns the bound address (for ":0" ephemeral binds).
func (s *Server) ListenIngest(addr string) (string, error) {
	return s.listen(addr, s.serveIngest)
}

// ListenVerdicts binds the verdict subscription listener.
func (s *Server) ListenVerdicts(addr string) (string, error) {
	return s.listen(addr, s.serveSubscribe)
}

// listen binds one listener and runs an accept loop feeding handler.
func (s *Server) listen(addr string, handler func(net.Conn)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("serve: server is shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.acceptWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// model resolves a handshake model name.
func (s *Server) model(name string) (*modelEntry, error) {
	if name == "" {
		return s.def, nil
	}
	if entry, ok := s.models[name]; ok {
		return entry, nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

// claimStream reserves a stream ID for one ingest connection. Stream IDs
// name engine streams, so two live connections must never share one.
func (s *Server) claimStream(stream string, conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server is shutting down")
	}
	if _, busy := s.active[stream]; busy {
		return fmt.Errorf("stream %q is already connected", stream)
	}
	s.active[stream] = conn
	s.ingestWG.Add(1)
	return nil
}

// releaseStream unmaps a finished connection and releases its engine
// stream, so connection churn cannot grow engine state without bound. A
// release racing Stop (shutdown force-close) is quietly skipped — Stop
// frees everything anyway.
func (s *Server) releaseStream(stream string) {
	s.mu.Lock()
	delete(s.active, stream)
	s.mu.Unlock()
	_ = s.eng.Release(stream)
	s.ingestWG.Done()
}

// serveIngest handles one device connection: handshake, claim the stream,
// then pump frames into the engine until EOF.
func (s *Server) serveIngest(conn net.Conn) {
	defer conn.Close()
	if s.cfg.IdleTimeout > 0 {
		// Wrap before the buffered reader so every read on the connection —
		// handshake, replay records, live frames — re-arms the deadline.
		conn = &idleConn{Conn: conn, timeout: s.cfg.IdleTimeout}
	}
	br := bufio.NewReader(conn)
	h, err := readHello(br)
	if err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	entry, err := s.model(h.Model)
	if err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	// Pin the model now: a hot-swap during this connection's lifetime must
	// not re-score a live recurrent stream with different weights.
	fw, regs := entry.current()
	stream := h.Stream
	if stream == "" {
		stream = fmt.Sprintf("conn-%d", s.nextID.Add(1))
	}
	if err := s.claimStream(stream, conn); err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	defer s.releaseStream(stream)
	if h.Precision != "" {
		p, err := core.ParsePrecision(h.Precision)
		if err == nil {
			err = s.eng.BindPrecision(stream, p)
		}
		if err != nil {
			s.rejected.Add(1)
			writeStatus(conn, 1, err.Error())
			return
		}
	}
	if err := writeStatus(conn, 0, ""); err != nil {
		return
	}
	s.accepted.Add(1)
	switch h.Mode {
	case ModeReplay:
		s.serveReplay(conn, br, fw, stream)
	case ModeLive:
		s.serveLive(br, fw, regs, stream)
	}
}

// serveReplay streams a recorded trace into the engine with blocking
// admission: every record is decoded through the exact tap rules
// (trace.Decoder) and submitted under the connection's model; a saturated
// engine pushes back on the socket. At EOF the client gets a trailing
// status plus the accepted-package count.
func (s *Server) serveReplay(conn net.Conn, br *bufio.Reader, fw *core.Framework, stream string) {
	tr, err := trace.NewReader(br)
	if err != nil {
		writeStatus(conn, 1, err.Error())
		return
	}
	hdr := tr.Header()
	if hdr.Fingerprint != "" {
		if got := fw.Fingerprint(); hdr.Fingerprint != got {
			writeStatus(conn, 1, fmt.Sprintf(
				"trace is pinned to model %s, connection's model is %s", hdr.Fingerprint, got))
			return
		}
	}
	dec := trace.NewDecoder(hdr)
	var count uint64
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeStatus(conn, 1, err.Error())
			return
		}
		pkg, err := dec.Decode(rec)
		if err != nil {
			writeStatus(conn, 1, err.Error())
			return
		}
		if err := s.eng.SubmitFor(fw, stream, pkg); err != nil {
			writeStatus(conn, 1, err.Error())
			return
		}
		count++
	}
	s.replayed.Add(count)
	// Trailer: the peer half-closed its write side and reads this before
	// closing. A vanished peer is its own acknowledgement.
	if err := writeStatus(conn, 0, ""); err == nil {
		var buf [10]byte
		n := putUvarint(buf[:], count)
		conn.Write(buf[:n])
	}
}

// serveLive pumps raw Modbus/TCP frames into the engine with shedding
// admission: frames are decoded exactly as the live tap decodes them, with
// direction inferred from the MBAP transaction ID (an unseen ID opens a
// command, a matching outstanding ID closes it as the response), and
// submitted with TrySubmitFor — a full shard queue drops the package and
// counts the shed instead of stalling the wire.
func (s *Server) serveLive(br *bufio.Reader, fw *core.Framework, regs tap.RegisterMap, stream string) {
	outstanding := make(map[uint16]struct{})
	started := time.Now()
	for {
		f, err := modbus.ReadTCPFrame(br)
		if err != nil {
			return
		}
		raw, err := modbus.EncodeTCP(f)
		if err != nil {
			return
		}
		tid := f.Header.TransactionID
		isCmd := true
		if _, open := outstanding[tid]; open {
			isCmd = false
			delete(outstanding, tid)
		} else {
			outstanding[tid] = struct{}{}
			if len(outstanding) > 4096 {
				// A peer that never answers its own commands would grow the
				// direction table without bound; resetting mis-directs only
				// the responses of the dropped transactions.
				outstanding = make(map[uint16]struct{})
			}
		}
		pkg := &dataset.Package{
			Address:  float64(f.Header.UnitID),
			Function: float64(f.PDU.Function),
			Length:   float64(len(raw)),
			Time:     time.Since(started).Seconds(),
		}
		if isCmd {
			pkg.CmdResponse = 1
		}
		regs.DecodePDU(pkg, f.PDU, isCmd)
		ok, err := s.eng.TrySubmitFor(fw, stream, pkg)
		if err != nil {
			return
		}
		if ok {
			s.live.Add(1)
		} else {
			s.shed.Add(1)
		}
	}
}

// serveSubscribe handshakes one verdict subscriber and hands the
// connection to the hub.
func (s *Server) serveSubscribe(conn net.Conn) {
	br := bufio.NewReader(conn)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil || m != subscribeMagic {
		writeStatus(conn, 1, "not a subscription connection (bad magic)")
		conn.Close()
		return
	}
	var ver [2]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		conn.Close()
		return
	}
	if v := uint16(ver[0])<<8 | uint16(ver[1]); v != ProtocolVersion {
		writeStatus(conn, 1, fmt.Sprintf("protocol version %d (this server speaks %d)", v, ProtocolVersion))
		conn.Close()
		return
	}
	if err := writeStatus(conn, 0, ""); err != nil {
		conn.Close()
		return
	}
	if !s.hub.add(conn) {
		conn.Close()
	}
}

// SwapModel replaces a served model's framework — the hot-swap path for
// retrained icstrain checkpoints. The new framework must support the
// engine's stack; an engine Barrier then provides the consistent cutover
// point: every package submitted before the swap is classified under the
// weights it was admitted with, connections accepted after SwapModel
// returns bind the new framework, and connections alive across the swap
// keep their pinned framework (recurrent state is model-specific, so
// re-scoring them would corrupt their streams).
func (s *Server) SwapModel(name string, fw *core.Framework) error {
	entry, err := s.model(name)
	if err != nil {
		return fmt.Errorf("serve: swap: %w", err)
	}
	if fw == nil {
		return fmt.Errorf("serve: swap: nil framework")
	}
	if _, err := fw.NewStack(s.eng.StackSpec()); err != nil {
		return fmt.Errorf("serve: swap %q: %w", entry.name, err)
	}
	if err := s.eng.Barrier(); err != nil {
		return fmt.Errorf("serve: swap %q: %w", entry.name, err)
	}
	entry.mu.Lock()
	entry.fw = fw
	entry.mu.Unlock()
	entry.swaps.Add(1)
	return nil
}

// Stats snapshots the daemon's own counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	activeConns := uint64(len(s.active))
	s.mu.Unlock()
	var swaps uint64
	for _, entry := range s.models {
		swaps += entry.swaps.Load()
	}
	return ServerStats{
		ActiveConns:     activeConns,
		AcceptedConns:   s.accepted.Load(),
		RejectedConns:   s.rejected.Load(),
		Replayed:        s.replayed.Load(),
		Live:            s.live.Load(),
		Shed:            s.shed.Load(),
		Subscribers:     uint64(s.hub.count()),
		SubscriberDrops: s.hub.drops.Load(),
		ModelSwaps:      swaps,
	}
}

// Shutdown is the graceful drain: stop accepting, wait for live ingest
// connections to finish (bounded by DrainGrace, then force-close), drain
// the engine queues via Stop — every admitted package is classified — and
// flush the verdict subscribers before detaching them. It returns the
// engine's Stop error (the first recovered handler panic, if any).
// Shutdown is idempotent.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.eng.Stop()
	}
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	s.acceptWG.Wait()

	done := make(chan struct{})
	go func() {
		s.ingestWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainGrace):
		s.mu.Lock()
		for _, conn := range s.active {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	err := s.eng.Stop()
	s.hub.close(s.cfg.DrainGrace)
	return err
}

// idleConn arms a fresh read deadline before every Read, so the deadline
// measures inactivity, not total connection lifetime. When the peer goes
// silent past the timeout the read fails with a timeout error and the
// handler unwinds through its usual release path.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(b []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

// putUvarint is binary.PutUvarint without the import-side dependency
// spelled out at the call site.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
