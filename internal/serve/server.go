package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/modbus"
	"icsdetect/internal/tap"
	"icsdetect/internal/trace"
)

// Model is one named detection model the daemon serves: a trained
// framework plus the register layout of the devices it monitors. Ingest
// connections select a model by name in their handshake; the first model
// of a Config is the default for connections that name none.
type Model struct {
	// Name is the handshake name ("gaspipeline", "watertank", …).
	Name string
	// Framework is the trained framework connections bind to. Hot-swap
	// (SwapModel) replaces it for connections accepted afterwards.
	Framework *core.Framework
	// Registers decodes live Modbus frames into the Table I parameter
	// columns (replay traces carry their own map in the trace header).
	Registers tap.RegisterMap
}

// Config configures a Server.
type Config struct {
	// Engine tunes the embedded detection engine (shards, batch width,
	// queue depth, stack).
	Engine engine.Config
	// Models are the served models; at least one. The first is the
	// default.
	Models []Model
	// SubscriberBuffer bounds each verdict subscriber's frame queue (a
	// frame carries the coalesced events of one shard tick); a subscriber
	// that falls further behind loses frames (their events counted, never
	// blocking the engine). Default: 1024.
	SubscriberBuffer int
	// SubscriberWriteTimeout, when positive, bounds every subscriber
	// socket write. A wedged subscriber (a peer that stopped reading)
	// otherwise parks its hub writer in a blocking Write until Shutdown's
	// force-close while its queue sheds everything; with the deadline it is
	// abandoned at runtime, with the queued events re-counted as drops —
	// the subscriber-side mirror of the ingest IdleTimeout. Zero disables
	// the deadline.
	SubscriberWriteTimeout time.Duration
	// IngestBurst caps how many packages an ingest connection admits into
	// the engine per submit: the replay and live loops batch every record
	// already buffered on the wire (up to the cap) into one
	// SubmitBatchFor/TrySubmitBatchFor call, and verdict fan-out coalesces
	// each shard tick's events into one published frame. 0 picks the
	// default (256); 1 (or negative) selects the per-package legacy path —
	// one submit and one published event per package — which is also the
	// baseline leg of `icsbench -servebench`.
	IngestBurst int
	// DrainGrace bounds how long Shutdown waits for ingest connections to
	// finish before force-closing them. Default: 5s.
	DrainGrace time.Duration
	// IdleTimeout, when positive, bounds how long an ingest connection may
	// go without delivering a byte before the server gives up on it. A
	// half-open live-mode peer (silent TCP, no FIN) would otherwise hold
	// its claimed stream ID, its engine stream state and its handler
	// goroutine forever; on expiry the connection closes and the stream
	// releases like any other disconnect. Zero disables the deadline
	// (replay feeds from slow storage may legitimately stall).
	IdleTimeout time.Duration
	// OnResult, when non-nil, observes every classified result before it
	// is fanned out to subscribers — a test and embedding hook, called on
	// shard goroutines under the engine Handler contract.
	OnResult func(engine.Result)
}

// modelEntry is the server's mutable slot for one served model. The
// framework pointer is read at connection accept (and pinned for the
// connection's lifetime — a hot-swap never re-scores a live stream) and
// written by SwapModel.
type modelEntry struct {
	name string
	mu   sync.RWMutex
	fw   *core.Framework
	regs tap.RegisterMap
	// fp caches fw.Fingerprint(): the digest walks every model parameter,
	// far too expensive to recompute on each replay connection's
	// trace-pin check. Updated together with fw under mu.
	fp string

	swaps atomic.Uint64
}

// current returns the entry's framework, register map and cached
// fingerprint.
func (m *modelEntry) current() (*core.Framework, tap.RegisterMap, string) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fw, m.regs, m.fp
}

// Server is the wire-to-verdict daemon: engine, ingest listener, verdict
// hub and ops endpoint. Create with New, attach listeners with
// ListenIngest / ListenVerdicts / ListenHTTP, stop with Shutdown.
type Server struct {
	cfg    Config
	eng    *engine.Engine
	hub    *hub
	models map[string]*modelEntry
	def    *modelEntry

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	active    map[string]net.Conn // live ingest streams, by stream ID
	ingestWG  sync.WaitGroup
	acceptWG  sync.WaitGroup

	// burst is the resolved IngestBurst; coalesce reports whether verdict
	// fan-out batches per shard tick (burst > 1).
	burst    int
	coalesce bool
	// frames holds, per engine shard, the frame accumulating the current
	// tick's encoded events. Each slot is touched only by its shard's
	// worker goroutine (handleResult and the TickEnd callback run there),
	// so the slice needs no locking.
	frames []*frame
	// scratch is the per-shard event-encoding staging buffer (see
	// appendEvent); like frames, each slot is touched only by its shard's
	// goroutine.
	scratch [][]byte

	nextID atomic.Uint64
	// Connection and admission counters (see ServerStats).
	accepted atomic.Uint64
	rejected atomic.Uint64
	replayed atomic.Uint64
	live     atomic.Uint64
	shed     atomic.Uint64
	// Ingest-plane counters: bytes and records read off ingest
	// connections, and engine admissions (bursts plus the packages they
	// carried — burstPkgs/bursts is the mean admitted burst width).
	ingestBytes   atomic.Uint64
	ingestRecords atomic.Uint64
	bursts        atomic.Uint64
	burstPkgs     atomic.Uint64

	statsMu    sync.Mutex
	lastStats  engine.Stats
	lastServer ServerStats
	lastTime   time.Time
}

// ServerStats is a point-in-time snapshot of the daemon's own counters,
// alongside the engine's Stats.
type ServerStats struct {
	// ActiveConns is the number of ingest connections currently serving;
	// AcceptedConns and RejectedConns count handshakes over the lifetime.
	ActiveConns, AcceptedConns, RejectedConns uint64
	// Replayed and Live count packages admitted per ingest mode; Shed
	// counts live packages dropped on a full shard queue.
	Replayed, Live, Shed uint64
	// IngestBytes and IngestRecords count the payload the ingest
	// connections read off the wire: every connection byte (handshakes
	// included) and every decoded record/frame, admitted or shed.
	IngestBytes, IngestRecords uint64
	// IngestBursts counts engine admission calls; IngestBurstPkgs the
	// packages they carried. A per-package submit counts as a burst of
	// one, so MeanIngestBurst is comparable across IngestBurst settings.
	IngestBursts, IngestBurstPkgs uint64
	// Subscribers is the number of attached verdict subscribers;
	// SubscriberDrops counts events lost to slow (or abandoned)
	// subscribers.
	Subscribers     uint64
	SubscriberDrops uint64
	// HubPublishes counts published verdict frames; HubPublishedEvents the
	// events they carried (see MeanPublishBatch).
	HubPublishes, HubPublishedEvents uint64
	// ModelSwaps counts SwapModel cutovers across all models.
	ModelSwaps uint64
}

// MeanIngestBurst is the mean number of packages per engine admission
// call — how much submit amortization the ingest bursting bought.
func (s ServerStats) MeanIngestBurst() float64 {
	if s.IngestBursts == 0 {
		return 0
	}
	return float64(s.IngestBurstPkgs) / float64(s.IngestBursts)
}

// MeanPublishBatch is the mean number of events per published verdict
// frame — how much fan-out amortization the tick coalescing bought.
func (s ServerStats) MeanPublishBatch() float64 {
	if s.HubPublishes == 0 {
		return 0
	}
	return float64(s.HubPublishedEvents) / float64(s.HubPublishes)
}

// Since returns the interval delta between two snapshots of the same
// server: cumulative counters minus their value in prev, following
// engine.Stats.Since. Gauges (ActiveConns, Subscribers) keep s's
// point-in-time value. prev must be the earlier snapshot (the zero
// ServerStats works as "since start").
func (s ServerStats) Since(prev ServerStats) ServerStats {
	d := s
	d.AcceptedConns -= prev.AcceptedConns
	d.RejectedConns -= prev.RejectedConns
	d.Replayed -= prev.Replayed
	d.Live -= prev.Live
	d.Shed -= prev.Shed
	d.IngestBytes -= prev.IngestBytes
	d.IngestRecords -= prev.IngestRecords
	d.IngestBursts -= prev.IngestBursts
	d.IngestBurstPkgs -= prev.IngestBurstPkgs
	d.SubscriberDrops -= prev.SubscriberDrops
	d.HubPublishes -= prev.HubPublishes
	d.HubPublishedEvents -= prev.HubPublishedEvents
	d.ModelSwaps -= prev.ModelSwaps
	return d
}

// New builds a server and starts its engine. The caller owns no goroutines
// yet — attach listeners to accept traffic.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	burst := cfg.IngestBurst
	if burst == 0 {
		burst = 256
	}
	if burst < 1 {
		burst = 1
	}
	s := &Server{
		cfg:      cfg,
		hub:      newHub(cfg.SubscriberBuffer, cfg.SubscriberWriteTimeout),
		models:   make(map[string]*modelEntry, len(cfg.Models)),
		active:   make(map[string]net.Conn),
		burst:    burst,
		coalesce: burst > 1,
		lastTime: time.Now(),
	}
	if s.coalesce {
		// Coalesce verdict fan-out per shard tick: handleResult accumulates
		// into per-shard frames, and the engine's TickEnd callback (on the
		// same shard goroutine) publishes each shard's frame once per tick.
		cfg.Engine.TickEnd = s.tickEnd
		s.cfg.Engine = cfg.Engine
	}
	for _, m := range cfg.Models {
		if m.Name == "" {
			return nil, fmt.Errorf("serve: model with empty name")
		}
		if m.Framework == nil {
			return nil, fmt.Errorf("serve: model %q has no framework", m.Name)
		}
		if _, dup := s.models[m.Name]; dup {
			return nil, fmt.Errorf("serve: model %q configured twice", m.Name)
		}
		entry := &modelEntry{
			name: m.Name, fw: m.Framework, regs: m.Registers,
			fp: m.Framework.Fingerprint(),
		}
		s.models[m.Name] = entry
		if s.def == nil {
			s.def = entry
		}
	}
	eng, err := engine.New(cfg.Models[0].Framework, cfg.Engine, s.handleResult)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// Safe to size after New: TickEnd cannot fire before the first
	// submission, and no listener accepts traffic yet.
	s.frames = make([]*frame, eng.Shards())
	s.scratch = make([][]byte, eng.Shards())
	// Non-default models must support the engine's stack too, fail-fast at
	// startup rather than on their first connection.
	for _, m := range cfg.Models[1:] {
		if _, err := m.Framework.NewStack(eng.StackSpec()); err != nil {
			eng.Stop()
			return nil, fmt.Errorf("serve: model %q: %w", m.Name, err)
		}
	}
	return s, nil
}

// Engine exposes the embedded engine (stats, barriers) to embedders and
// tests.
func (s *Server) Engine() *engine.Engine { return s.eng }

// handleResult is the engine Handler: observe, encode once, fan out.
// With tick coalescing the event is appended to the shard's pending frame
// (published by tickEnd); on the per-package path it publishes alone.
func (s *Server) handleResult(r engine.Result) {
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
	if s.coalesce {
		f := s.frames[r.Shard]
		if f == nil {
			f = s.hub.newFrame()
			s.frames[r.Shard] = f
		}
		f.buf, s.scratch[r.Shard] = appendEvent(f.buf, s.scratch[r.Shard], r)
		f.events++
		return
	}
	f := s.hub.newFrame()
	f.buf, s.scratch[r.Shard] = appendEvent(f.buf, s.scratch[r.Shard], r)
	f.events = 1
	s.hub.publishFrame(f)
}

// tickEnd is the engine's per-shard tick callback: publish the shard's
// coalesced frame — one hub pass per tick instead of one per event. It
// runs on the shard goroutine, after the tick's last handleResult.
func (s *Server) tickEnd(shard int) {
	if f := s.frames[shard]; f != nil && f.events > 0 {
		s.frames[shard] = nil
		s.hub.publishFrame(f)
	}
}

// ListenIngest binds the ingest listener and starts accepting device
// connections. It returns the bound address (for ":0" ephemeral binds).
func (s *Server) ListenIngest(addr string) (string, error) {
	return s.listen(addr, s.serveIngest)
}

// ListenVerdicts binds the verdict subscription listener.
func (s *Server) ListenVerdicts(addr string) (string, error) {
	return s.listen(addr, s.serveSubscribe)
}

// listen binds one listener and runs an accept loop feeding handler.
func (s *Server) listen(addr string, handler func(net.Conn)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("serve: server is shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.acceptWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// model resolves a handshake model name.
func (s *Server) model(name string) (*modelEntry, error) {
	if name == "" {
		return s.def, nil
	}
	if entry, ok := s.models[name]; ok {
		return entry, nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

// claimStream reserves a stream ID for one ingest connection. Stream IDs
// name engine streams, so two live connections must never share one.
func (s *Server) claimStream(stream string, conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server is shutting down")
	}
	if _, busy := s.active[stream]; busy {
		return fmt.Errorf("stream %q is already connected", stream)
	}
	s.active[stream] = conn
	s.ingestWG.Add(1)
	return nil
}

// releaseStream unmaps a finished connection and releases its engine
// stream, so connection churn cannot grow engine state without bound. A
// release racing Stop (shutdown force-close) is quietly skipped — Stop
// frees everything anyway.
func (s *Server) releaseStream(stream string) {
	s.mu.Lock()
	delete(s.active, stream)
	s.mu.Unlock()
	_ = s.eng.Release(stream)
	s.ingestWG.Done()
}

// serveIngest handles one device connection: handshake, claim the stream,
// then pump frames into the engine until EOF.
func (s *Server) serveIngest(conn net.Conn) {
	defer conn.Close()
	if s.cfg.IdleTimeout > 0 {
		// Wrap before the buffered reader so every read on the connection —
		// handshake, replay records, live frames — re-arms the deadline.
		conn = &idleConn{Conn: conn, timeout: s.cfg.IdleTimeout}
	}
	// Count every ingest byte read off the wire (IngestBytes).
	conn = &countingConn{Conn: conn, count: &s.ingestBytes}
	br := bufio.NewReader(conn)
	h, err := readHello(br)
	if err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	entry, err := s.model(h.Model)
	if err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	// Pin the model now: a hot-swap during this connection's lifetime must
	// not re-score a live recurrent stream with different weights.
	fw, regs, fp := entry.current()
	stream := h.Stream
	if stream == "" {
		stream = fmt.Sprintf("conn-%d", s.nextID.Add(1))
	}
	if err := s.claimStream(stream, conn); err != nil {
		s.rejected.Add(1)
		writeStatus(conn, 1, err.Error())
		return
	}
	defer s.releaseStream(stream)
	if h.Precision != "" {
		p, err := core.ParsePrecision(h.Precision)
		if err == nil {
			err = s.eng.BindPrecision(stream, p)
		}
		if err != nil {
			s.rejected.Add(1)
			writeStatus(conn, 1, err.Error())
			return
		}
	}
	if err := writeStatus(conn, 0, ""); err != nil {
		return
	}
	s.accepted.Add(1)
	switch h.Mode {
	case ModeReplay:
		s.serveReplay(conn, br, fw, fp, stream)
	case ModeLive:
		s.serveLive(br, fw, regs, stream)
	}
}

// serveReplay streams a recorded trace into the engine with blocking
// admission: every record is decoded through the exact tap rules
// (trace.Decoder) and submitted under the connection's model; a saturated
// engine pushes back on the socket. Records are admitted in bursts —
// decode until IngestBurst packages have accumulated or the reader's
// buffered data runs dry, then one SubmitBatchFor — so the engine's
// per-submit costs amortize over whatever the wire already delivered. At
// EOF the client gets a trailing status plus the accepted-package count.
func (s *Server) serveReplay(conn net.Conn, br *bufio.Reader, fw *core.Framework, fp, stream string) {
	tr, err := trace.NewReader(br)
	if err != nil {
		writeStatus(conn, 1, err.Error())
		return
	}
	hdr := tr.Header()
	if hdr.Fingerprint != "" && hdr.Fingerprint != fp {
		writeStatus(conn, 1, fmt.Sprintf(
			"trace is pinned to model %s, connection's model is %s", hdr.Fingerprint, fp))
		return
	}
	dec := trace.NewDecoder(hdr)
	var count uint64
	var batch []*dataset.Package
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		// The engine owns the slice after submit; the next burst gets a
		// fresh one (one allocation amortized over the whole burst).
		if err := s.eng.SubmitBatchFor(fw, stream, batch); err != nil {
			return err
		}
		count += uint64(len(batch))
		s.bursts.Add(1)
		s.burstPkgs.Add(uint64(len(batch)))
		batch = nil
		return nil
	}
	// Each record is decoded into its Package before the next read, so
	// one reused Record and payload buffer carry the whole trace.
	var rec trace.Record
	var rbuf []byte
	for {
		rbuf, err = tr.NextInto(&rec, rbuf)
		if err == io.EOF {
			break
		}
		if err != nil {
			writeStatus(conn, 1, err.Error())
			return
		}
		pkg, err := dec.Decode(&rec)
		if err != nil {
			writeStatus(conn, 1, err.Error())
			return
		}
		s.ingestRecords.Add(1)
		if s.burst <= 1 {
			if err := s.eng.SubmitFor(fw, stream, pkg); err != nil {
				writeStatus(conn, 1, err.Error())
				return
			}
			count++
			s.bursts.Add(1)
			s.burstPkgs.Add(1)
			continue
		}
		if batch == nil {
			batch = make([]*dataset.Package, 0, s.burst)
		}
		batch = append(batch, pkg)
		// Flush when the burst is full or the wire has nothing more
		// buffered — trace.NewReader(br) reuses br (bufio on bufio is the
		// identity), so Buffered() sees exactly the decoder's unread data.
		if len(batch) >= s.burst || br.Buffered() == 0 {
			if err := flush(); err != nil {
				writeStatus(conn, 1, err.Error())
				return
			}
		}
	}
	if err := flush(); err != nil {
		writeStatus(conn, 1, err.Error())
		return
	}
	s.replayed.Add(count)
	// Trailer: the peer half-closed its write side and reads this before
	// closing. A vanished peer is its own acknowledgement.
	if err := writeStatus(conn, 0, ""); err == nil {
		var buf [10]byte
		n := putUvarint(buf[:], count)
		conn.Write(buf[:n])
	}
}

// serveLive pumps raw Modbus/TCP frames into the engine with shedding
// admission: frames are decoded exactly as the live tap decodes them, with
// direction inferred from the MBAP transaction ID (an unseen ID opens a
// command, a matching outstanding ID closes it as the response). Each
// wakeup blocks for one frame, then drains every complete MBAP frame
// already sitting in the read buffer (up to IngestBurst) and admits the
// burst with one TrySubmitBatchFor — a full shard queue drops the whole
// burst and counts the shed instead of stalling the wire.
func (s *Server) serveLive(br *bufio.Reader, fw *core.Framework, regs tap.RegisterMap, stream string) {
	dec := liveDecoder{regs: regs, outstanding: make(map[uint16]struct{}), started: time.Now()}
	for {
		f, err := modbus.ReadTCPFrame(br)
		if err != nil {
			return
		}
		pkg, err := dec.decode(f)
		if err != nil {
			return
		}
		s.ingestRecords.Add(1)
		if s.burst <= 1 {
			ok, err := s.eng.TrySubmitFor(fw, stream, pkg)
			if err != nil {
				return
			}
			s.bursts.Add(1)
			s.burstPkgs.Add(1)
			if ok {
				s.live.Add(1)
			} else {
				s.shed.Add(1)
			}
			continue
		}
		batch := make([]*dataset.Package, 0, s.burst)
		batch = append(batch, pkg)
		for len(batch) < s.burst && bufferedFrame(br) {
			f, err := modbus.ReadTCPFrame(br)
			if err != nil {
				return
			}
			pkg, err := dec.decode(f)
			if err != nil {
				return
			}
			s.ingestRecords.Add(1)
			batch = append(batch, pkg)
		}
		ok, err := s.eng.TrySubmitBatchFor(fw, stream, batch)
		if err != nil {
			return
		}
		s.bursts.Add(1)
		s.burstPkgs.Add(uint64(len(batch)))
		if ok {
			s.live.Add(uint64(len(batch)))
		} else {
			s.shed.Add(uint64(len(batch)))
		}
	}
}

// liveDecoder turns one live Modbus/TCP frame into the Table I package
// schema, carrying the per-connection direction table and clock.
type liveDecoder struct {
	regs        tap.RegisterMap
	outstanding map[uint16]struct{}
	started     time.Time
}

func (d *liveDecoder) decode(f *modbus.TCPFrame) (*dataset.Package, error) {
	raw, err := modbus.EncodeTCP(f)
	if err != nil {
		return nil, err
	}
	tid := f.Header.TransactionID
	isCmd := true
	if _, open := d.outstanding[tid]; open {
		isCmd = false
		delete(d.outstanding, tid)
	} else {
		d.outstanding[tid] = struct{}{}
		if len(d.outstanding) > 4096 {
			// A peer that never answers its own commands would grow the
			// direction table without bound; resetting mis-directs only
			// the responses of the dropped transactions.
			d.outstanding = make(map[uint16]struct{})
		}
	}
	pkg := &dataset.Package{
		Address:  float64(f.Header.UnitID),
		Function: float64(f.PDU.Function),
		Length:   float64(len(raw)),
		Time:     time.Since(d.started).Seconds(),
	}
	if isCmd {
		pkg.CmdResponse = 1
	}
	d.regs.DecodePDU(pkg, f.PDU, isCmd)
	return pkg, nil
}

// bufferedFrame reports whether a complete MBAP frame is already sitting
// in br's buffer — the live burst loop's "drain without blocking" probe.
// A buffered header whose length field is invalid reports true so the
// next ReadTCPFrame surfaces the framing error.
func bufferedFrame(br *bufio.Reader) bool {
	const hdrLen = 7 // TID u16, protocol u16, length u16, unit u8
	if br.Buffered() < hdrLen {
		return false
	}
	hdr, err := br.Peek(hdrLen)
	if err != nil {
		return false
	}
	length := binary.BigEndian.Uint16(hdr[4:6])
	if length < 1 {
		return true
	}
	// A full frame is the 6 fixed header bytes plus length (unit + PDU).
	return br.Buffered() >= 6+int(length)
}

// serveSubscribe handshakes one verdict subscriber and hands the
// connection to the hub.
func (s *Server) serveSubscribe(conn net.Conn) {
	br := bufio.NewReader(conn)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil || m != subscribeMagic {
		writeStatus(conn, 1, "not a subscription connection (bad magic)")
		conn.Close()
		return
	}
	var ver [2]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		conn.Close()
		return
	}
	if v := uint16(ver[0])<<8 | uint16(ver[1]); v != ProtocolVersion {
		writeStatus(conn, 1, fmt.Sprintf("protocol version %d (this server speaks %d)", v, ProtocolVersion))
		conn.Close()
		return
	}
	if err := writeStatus(conn, 0, ""); err != nil {
		conn.Close()
		return
	}
	if !s.hub.add(conn) {
		conn.Close()
	}
}

// SwapModel replaces a served model's framework — the hot-swap path for
// retrained icstrain checkpoints. The new framework must support the
// engine's stack; an engine Barrier then provides the consistent cutover
// point: every package submitted before the swap is classified under the
// weights it was admitted with, connections accepted after SwapModel
// returns bind the new framework, and connections alive across the swap
// keep their pinned framework (recurrent state is model-specific, so
// re-scoring them would corrupt their streams).
func (s *Server) SwapModel(name string, fw *core.Framework) error {
	entry, err := s.model(name)
	if err != nil {
		return fmt.Errorf("serve: swap: %w", err)
	}
	if fw == nil {
		return fmt.Errorf("serve: swap: nil framework")
	}
	if _, err := fw.NewStack(s.eng.StackSpec()); err != nil {
		return fmt.Errorf("serve: swap %q: %w", entry.name, err)
	}
	if err := s.eng.Barrier(); err != nil {
		return fmt.Errorf("serve: swap %q: %w", entry.name, err)
	}
	fp := fw.Fingerprint()
	entry.mu.Lock()
	entry.fw = fw
	entry.fp = fp
	entry.mu.Unlock()
	entry.swaps.Add(1)
	return nil
}

// Stats snapshots the daemon's own counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	activeConns := uint64(len(s.active))
	s.mu.Unlock()
	var swaps uint64
	for _, entry := range s.models {
		swaps += entry.swaps.Load()
	}
	return ServerStats{
		ActiveConns:        activeConns,
		AcceptedConns:      s.accepted.Load(),
		RejectedConns:      s.rejected.Load(),
		Replayed:           s.replayed.Load(),
		Live:               s.live.Load(),
		Shed:               s.shed.Load(),
		IngestBytes:        s.ingestBytes.Load(),
		IngestRecords:      s.ingestRecords.Load(),
		IngestBursts:       s.bursts.Load(),
		IngestBurstPkgs:    s.burstPkgs.Load(),
		Subscribers:        uint64(s.hub.count()),
		SubscriberDrops:    s.hub.drops.Load(),
		HubPublishes:       s.hub.publishes.Load(),
		HubPublishedEvents: s.hub.publishedEvents.Load(),
		ModelSwaps:         swaps,
	}
}

// SubscriberStats snapshots every attached verdict subscriber: queue
// depth (frames pending), capacity and per-subscriber drops.
func (s *Server) SubscriberStats() []SubscriberStats {
	return s.hub.subscriberStats()
}

// Shutdown is the graceful drain: stop accepting, wait for live ingest
// connections to finish (bounded by DrainGrace, then force-close), drain
// the engine queues via Stop — every admitted package is classified — and
// flush the verdict subscribers before detaching them. It returns the
// engine's Stop error (the first recovered handler panic, if any).
// Shutdown is idempotent.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.eng.Stop()
	}
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	s.acceptWG.Wait()

	done := make(chan struct{})
	go func() {
		s.ingestWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainGrace):
		s.mu.Lock()
		for _, conn := range s.active {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	err := s.eng.Stop()
	s.hub.close(s.cfg.DrainGrace)
	return err
}

// idleConn arms a fresh read deadline before every Read, so the deadline
// measures inactivity, not total connection lifetime. When the peer goes
// silent past the timeout the read fails with a timeout error and the
// handler unwinds through its usual release path.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(b []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

// countingConn counts the bytes read off an ingest connection into the
// server's IngestBytes counter.
type countingConn struct {
	net.Conn
	count *atomic.Uint64
}

func (c *countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.count.Add(uint64(n))
	}
	return n, err
}

// putUvarint is binary.PutUvarint without the import-side dependency
// spelled out at the call site.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
