package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// testEvent encodes one synthetic result as a wire event.
func testEvent(stream string, seq uint64) []byte {
	b, _ := appendEvent(nil, nil, engine.Result{
		Stream:  stream,
		Seq:     seq,
		Verdict: core.Verdict{Anomaly: seq%2 == 0, Level: 1, Signature: "sig"},
	})
	return b
}

// publishOne publishes one pre-encoded event as a single-event frame —
// the per-package fan-out shape, and the granularity the conservation
// arithmetic of these tests is written in.
func publishOne(h *hub, b []byte) {
	f := h.newFrame()
	f.buf = append(f.buf, b...)
	f.events = 1
	h.publishFrame(f)
}

// TestHubSlowConsumerDrops: a subscriber that never reads loses events
// (counted) without ever blocking publish, while a healthy subscriber on
// the same hub receives everything it can drain.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := newHub(4, 0)

	slowSrv, slowCli := net.Pipe() // nobody reads slowCli: writes park forever
	defer slowCli.Close()
	if !h.add(slowSrv) {
		t.Fatal("add slow subscriber")
	}

	fastSrv, fastCli := net.Pipe()
	if !h.add(fastSrv) {
		t.Fatal("add fast subscriber")
	}
	var gotMu sync.Mutex
	var got []string
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		br := bufio.NewReader(fastCli)
		for {
			ev, err := readEvent(br)
			if err != nil {
				return
			}
			gotMu.Lock()
			got = append(got, ev.Stream)
			gotMu.Unlock()
		}
	}()

	// Publish far past the slow subscriber's buffer. Publish must never
	// block: a wedged subscriber cannot be allowed to stall the engine's
	// handler goroutines.
	const events = 200
	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 0; i < events; i++ {
			publishOne(h, testEvent(fmt.Sprintf("s-%03d", i), uint64(i)))
		}
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}

	// The slow subscriber's writer is parked in a blocking Write; close must
	// force it loose after the grace window instead of hanging Shutdown.
	closed := make(chan struct{})
	go func() {
		h.close(100 * time.Millisecond)
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("hub close hung on a wedged subscriber")
	}
	<-fastDone
	fastCli.Close()

	gotMu.Lock()
	defer gotMu.Unlock()
	drops := h.drops.Load()
	if drops == 0 {
		t.Error("slow subscriber registered no drops")
	}
	if len(got) == 0 {
		t.Fatal("fast subscriber received nothing")
	}
	// Conservation: every published event was either delivered into a
	// subscriber queue or counted as dropped, across both subscribers.
	delivered := h.delivered.Load()
	if delivered+drops != 2*events {
		t.Errorf("delivered %d + dropped %d != published %d × 2 subscribers", delivered, drops, 2*events)
	}
}

// TestHubSubscriberErrorRemoves: a subscriber whose connection dies is
// removed from the hub; publishing afterwards neither blocks nor panics,
// and close() still returns.
func TestHubSubscriberErrorRemoves(t *testing.T) {
	h := newHub(4, 0)
	srv, cli := net.Pipe()
	if !h.add(srv) {
		t.Fatal("add")
	}
	cli.Close() // next write errors

	ev := testEvent("x", 0)
	deadline := time.Now().Add(5 * time.Second)
	for h.count() != 0 {
		publishOne(h, ev)
		if time.Now().After(deadline) {
			t.Fatal("dead subscriber never removed")
		}
		time.Sleep(time.Millisecond)
	}
	publishOne(h, ev) // no subscribers: must not panic
	h.close(time.Second)
	if h.count() != 0 {
		t.Errorf("count = %d after close", h.count())
	}
}

// wedgedConn is a net.Conn whose Write signals entry, parks until the
// connection is released, and fails from then on — the shape of a peer
// that stops acking and then resets mid-stream.
type wedgedConn struct {
	entered   chan struct{}
	release   chan struct{}
	enterOnce sync.Once
	closeOnce sync.Once
}

func newWedgedConn() *wedgedConn {
	return &wedgedConn{entered: make(chan struct{}), release: make(chan struct{})}
}

func (c *wedgedConn) Write(b []byte) (int, error) {
	c.enterOnce.Do(func() { close(c.entered) })
	<-c.release
	return 0, fmt.Errorf("write to wedged peer")
}

func (c *wedgedConn) Read(b []byte) (int, error) { <-c.release; return 0, io.EOF }
func (c *wedgedConn) Close() error {
	c.closeOnce.Do(func() { close(c.release) })
	return nil
}
func (c *wedgedConn) LocalAddr() net.Addr                { return nil }
func (c *wedgedConn) RemoteAddr() net.Addr               { return nil }
func (c *wedgedConn) SetDeadline(t time.Time) error      { return nil }
func (c *wedgedConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *wedgedConn) SetWriteDeadline(t time.Time) error { return nil }

// TestHubWriterErrorDrainsQueue: when a subscriber's connection fails
// mid-write, the events still queued behind the failure were counted
// delivered but will never reach the wire — the writer must re-count
// them as drops on its way out, or the documented conservation invariant
// (delivered + drops = publishes × subscribers) silently breaks. This is
// the regression test for the writer-error path abandoning sub.ch
// without draining it.
func TestHubWriterErrorDrainsQueue(t *testing.T) {
	h := newHub(8, 0)
	conn := newWedgedConn()
	if !h.add(conn) {
		t.Fatal("add")
	}

	// First event: the writer dequeues it, the queue runs dry, and the
	// flush parks inside conn.Write.
	publishOne(h, testEvent("s", 0))
	select {
	case <-conn.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached the connection write")
	}

	// Three more events queue up behind the parked writer, all counted
	// delivered at publish time.
	const queued = 3
	for i := 1; i <= queued; i++ {
		publishOne(h, testEvent("s", uint64(i)))
	}
	if d := h.delivered.Load(); d != 1+queued {
		t.Fatalf("delivered = %d before failure, want %d", d, 1+queued)
	}

	// Release the connection: the parked flush fails and the writer exits.
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for h.count() != 0 || h.drops.Load() != queued {
		if time.Now().After(deadline) {
			t.Fatalf("after writer error: drops = %d, delivered = %d, want %d queued events re-counted as drops",
				h.drops.Load(), h.delivered.Load(), queued)
		}
		time.Sleep(time.Millisecond)
	}
	if d := h.delivered.Load(); d != 1 {
		t.Errorf("delivered = %d after drain, want 1 (only the event that reached the writer)", d)
	}
	// Conservation: 4 publishes × 1 subscriber.
	if got := h.delivered.Load() + h.drops.Load(); got != 1+queued {
		t.Errorf("delivered+drops = %d, want %d", got, 1+queued)
	}
	h.close(time.Second)
}

// TestHubCoalescedFrameDelivery: a multi-event frame reaches the
// subscriber as its individual events, in order, while the hub counters
// account at event granularity — one publish, N published events, N
// delivered.
func TestHubCoalescedFrameDelivery(t *testing.T) {
	h := newHub(4, 0)
	srv, cli := net.Pipe()
	if !h.add(srv) {
		t.Fatal("add")
	}

	const events = 5
	f := h.newFrame()
	for i := 0; i < events; i++ {
		f.buf, _ = appendEvent(f.buf, nil, engine.Result{
			Stream:  "s",
			Seq:     uint64(i),
			Verdict: core.Verdict{Anomaly: i%2 == 0, Level: 1, Signature: "sig"},
		})
		f.events++
	}
	h.publishFrame(f)

	br := bufio.NewReader(cli)
	for i := 0; i < events; i++ {
		ev, err := readEvent(br)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Stream != "s" || ev.Seq != uint64(i) {
			t.Fatalf("event %d: got %q/%d", i, ev.Stream, ev.Seq)
		}
	}
	if p, pe := h.publishes.Load(), h.publishedEvents.Load(); p != 1 || pe != events {
		t.Errorf("publishes = %d, publishedEvents = %d, want 1 and %d", p, pe, events)
	}
	if d := h.delivered.Load(); d != events {
		t.Errorf("delivered = %d, want %d", d, events)
	}
	cli.Close()
	h.close(time.Second)
}

// TestHubSubscriberWriteTimeout is the regression test for the wedged
// subscriber bugfix: before SubscriberWriteTimeout existed, a peer that
// stopped reading parked its hub writer in a blocking Write until
// shutdown's force-close — the subscriber was never abandoned at runtime
// and every later event just queued or dropped against a dead peer. With
// the per-write deadline the writer fails at the deadline and the
// subscriber is abandoned through the same hub.abandon path a broken
// connection takes, re-counting its queued events as drops. (Run against
// a hub built with writeTimeout 0 this test times out in the poll below —
// the pre-fix failure mode.)
func TestHubSubscriberWriteTimeout(t *testing.T) {
	h := newHub(8, 50*time.Millisecond)
	srv, cli := net.Pipe() // nobody reads cli: writes park until their deadline
	defer cli.Close()
	if !h.add(srv) {
		t.Fatal("add")
	}

	// Publish steadily: the writer's first flush against the unread pipe
	// parks for the write deadline while events pile up behind it, then
	// fails — and the subscriber must be abandoned at runtime, well before
	// any close(grace) force-close.
	deadline := time.Now().Add(5 * time.Second)
	var i uint64
	for h.count() != 0 {
		publishOne(h, testEvent("s", i))
		i++
		if time.Now().After(deadline) {
			t.Fatal("wedged subscriber never abandoned at runtime (write deadline did not fire)")
		}
		time.Sleep(time.Millisecond)
	}
	// Conservation across the abandon re-count: every event published
	// while the subscriber was attached is either delivered (reached the
	// writer before the failure) or dropped — at enqueue on the full
	// queue, or re-counted when abandon drained the rest.
	if got, want := h.delivered.Load()+h.drops.Load(), h.publishedEvents.Load(); got != want {
		t.Errorf("delivered+drops = %d, want %d (published events)", got, want)
	}
	if h.drops.Load() == 0 {
		t.Error("abandoning a wedged subscriber re-counted no drops")
	}
	// With the subscriber long gone, close is immediate.
	start := time.Now()
	h.close(10 * time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("close took %v despite the wedged subscriber being abandoned", elapsed)
	}
}

// TestHubAddAfterClose: add on a closed hub reports failure so the caller
// closes the connection instead of leaking it.
func TestHubAddAfterClose(t *testing.T) {
	h := newHub(0, 0)
	h.close(time.Second)
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	if h.add(srv) {
		t.Error("add succeeded on a closed hub")
	}
	h.close(time.Second) // idempotent
}

// TestEventRoundTrip pins the event wire encoding: encode → decode is
// identity, including evidence, and the decoder rejects oversized frames.
func TestEventRoundTrip(t *testing.T) {
	want := engine.Result{
		Stream: "plc-7",
		Seq:    42,
		Verdict: core.Verdict{
			Anomaly:   true,
			Level:     3,
			Rank:      -1,
			Signature: "sig",
			Evidence: []core.LevelEvidence{
				{Stage: "bloom", Level: 0, Scored: true, Flagged: false, Score: 0.25, Rank: 2},
				{Stage: "lstm", Level: 3, Scored: true, Flagged: true, Score: 0.99, Rank: -1},
			},
		},
	}
	framed, _ := appendEvent(nil, nil, want)
	ev, err := readEvent(bufio.NewReader(bytes.NewReader(framed)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stream != want.Stream || ev.Seq != want.Seq {
		t.Errorf("round trip identity: got %q/%d", ev.Stream, ev.Seq)
	}
	v, wv := ev.Verdict, want.Verdict
	if v.Anomaly != wv.Anomaly || v.Level != wv.Level || v.Rank != wv.Rank || v.Signature != wv.Signature {
		t.Errorf("verdict mismatch: %+v", v)
	}
	if len(v.Evidence) != len(wv.Evidence) {
		t.Fatalf("evidence count %d, want %d", len(v.Evidence), len(wv.Evidence))
	}
	for i, e := range v.Evidence {
		if e != wv.Evidence[i] {
			t.Errorf("evidence %d: %+v, want %+v", i, e, wv.Evidence[i])
		}
	}

	huge := make([]byte, 0, 10)
	huge = appendTestUvarint(huge, maxEventLen+1)
	if _, err := readEvent(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Error("oversized event frame accepted")
	}
	if _, err := readEvent(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func appendTestUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}
