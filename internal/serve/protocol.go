// Package serve is the wire-to-verdict serving plane: a long-running
// daemon wrapping internal/engine that accepts network connections from
// monitored devices, maps each connection onto one engine stream (bind on
// accept, Release on close), and fans classified verdicts out to
// subscribers.
//
// The daemon speaks three protocols on three listeners:
//
//   - Ingest (this file): a connection handshakes with an 8-byte magic,
//     a version, a mode byte and three uvarint-prefixed strings (stream ID,
//     model name, precision), then streams either a recorded ICSTRACE
//     byte stream (replay mode, admitted with blocking SubmitFor — a
//     saturated engine pushes back on the socket) or raw Modbus/TCP
//     frames (live mode, admitted with TrySubmitFor — an in-path tap
//     sheds rather than stalls the protocol path).
//   - Verdicts: a subscriber handshakes with its own magic and then
//     receives every engine.Result as a length-prefixed binary event,
//     through a per-subscriber bounded buffer with slow-consumer drop
//     accounting (see hub.go).
//   - HTTP ops: health, interval-delta metrics over engine.ShardStats,
//     and model hot-swap (see http.go).
//
// All multi-byte integers are big-endian; "uvarint"/"varint" are the
// varints of encoding/binary. Strings are uvarint length + UTF-8 bytes.
//
// Ingest handshake:
//
//	hello  := magic "ICSSERVE" (8 bytes)
//	          version u16        // this package speaks 1
//	          mode    u8         // 1 = replay, 2 = live
//	          stream    string   // engine stream ID; empty = server-assigned
//	          model     string   // model name; empty = server default
//	          precision string   // numeric tier; empty = engine default
//	status := code u8            // 0 = ok, non-zero = rejected
//	          message string     // empty on ok
//
// The server answers the hello with a status. In replay mode the payload
// that follows is an ICSTRACE v1 stream (header + records, see package
// trace); at EOF the server answers with a trailing status plus a uvarint
// count of the packages it accepted. In live mode the payload is a
// sequence of MBAP-framed Modbus/TCP frames and has no trailer; direction
// is inferred per frame from the MBAP transaction ID (an unseen ID opens a
// command, a matching outstanding ID closes it as the response).
//
// Verdict subscription:
//
//	subscribe := magic "ICSSUBSC" (8 bytes), version u16
//	status    := as above
//	event     := uvarint payloadLen, payload
//	payload   := stream string, seq uvarint,
//	             anomaly u8, level varint, rank varint, signature string,
//	             evidence uvarint n, n × (stage string, level varint,
//	               flags u8 (bit0 scored, bit1 flagged),
//	               score u64 (IEEE-754 bits), rank varint)
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// ProtocolVersion is the ingest and subscription protocol version this
// package speaks.
const ProtocolVersion = 1

// Ingest modes.
const (
	// ModeReplay streams a recorded ICSTRACE capture; admission blocks on
	// the engine's bounded queues (every package is classified).
	ModeReplay = 1
	// ModeLive streams raw Modbus/TCP frames from an in-path tap;
	// admission sheds on a full shard queue instead of stalling the wire.
	ModeLive = 2
)

var (
	ingestMagic    = [8]byte{'I', 'C', 'S', 'S', 'E', 'R', 'V', 'E'}
	subscribeMagic = [8]byte{'I', 'C', 'S', 'S', 'U', 'B', 'S', 'C'}
)

// Limits guarding the decoders against corrupt or hostile peers.
const (
	maxStringLen = 1024
	maxEventLen  = 1 << 20
	maxEvidence  = 4096
)

// hello is a parsed ingest handshake.
type hello struct {
	Mode      byte
	Stream    string
	Model     string
	Precision string
}

// appendString serializes a uvarint-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readProtoString reads a uvarint-prefixed string.
func readProtoString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("serve: string of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// appendHello serializes an ingest handshake.
func appendHello(b []byte, h hello) []byte {
	b = append(b, ingestMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, ProtocolVersion)
	b = append(b, h.Mode)
	b = appendString(b, h.Stream)
	b = appendString(b, h.Model)
	b = appendString(b, h.Precision)
	return b
}

// readHello parses an ingest handshake.
func readHello(br *bufio.Reader) (hello, error) {
	var h hello
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return h, fmt.Errorf("serve: read handshake: %w", err)
	}
	if m != ingestMagic {
		return h, fmt.Errorf("serve: not an ingest connection (bad magic)")
	}
	var fixed [3]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return h, fmt.Errorf("serve: truncated handshake: %w", err)
	}
	if v := binary.BigEndian.Uint16(fixed[0:2]); v != ProtocolVersion {
		return h, fmt.Errorf("serve: protocol version %d (this server speaks %d)", v, ProtocolVersion)
	}
	h.Mode = fixed[2]
	if h.Mode != ModeReplay && h.Mode != ModeLive {
		return h, fmt.Errorf("serve: unknown ingest mode %d", h.Mode)
	}
	var err error
	if h.Stream, err = readProtoString(br); err != nil {
		return h, fmt.Errorf("serve: handshake stream: %w", err)
	}
	if h.Model, err = readProtoString(br); err != nil {
		return h, fmt.Errorf("serve: handshake model: %w", err)
	}
	if h.Precision, err = readProtoString(br); err != nil {
		return h, fmt.Errorf("serve: handshake precision: %w", err)
	}
	return h, nil
}

// writeStatus answers a handshake (or closes a replay) with a status code
// and message. Write errors are returned for the caller to log or ignore —
// the peer may already be gone.
func writeStatus(w io.Writer, code byte, msg string) error {
	if len(msg) > maxStringLen {
		msg = msg[:maxStringLen]
	}
	b := append(make([]byte, 0, 2+len(msg)), code)
	_, err := w.Write(appendString(b, msg))
	return err
}

// readStatus parses a status answer; a non-zero code comes back as an
// error carrying the server's message.
func readStatus(br *bufio.Reader) error {
	code, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("serve: read status: %w", err)
	}
	msg, err := readProtoString(br)
	if err != nil {
		return fmt.Errorf("serve: read status message: %w", err)
	}
	if code != 0 {
		return fmt.Errorf("serve: rejected: %s", msg)
	}
	return nil
}

// Event is one classified package as delivered to a verdict subscriber.
type Event struct {
	// Stream is the engine stream ID (the ingest connection's stream).
	Stream string
	// Seq is the package's 0-based position within its stream.
	Seq uint64
	// Verdict is the engine's verdict, evidence included.
	Verdict core.Verdict
}

// appendEvent serializes one result as a length-prefixed event. The
// payload is staged in scratch — grown as needed and returned for reuse —
// because the shard goroutines encode every verdict through here and a
// fresh staging buffer per event is pure GC pressure. Pass nil when the
// call is not hot.
func appendEvent(b, scratch []byte, r engine.Result) ([]byte, []byte) {
	p := scratch[:0]
	p = appendString(p, r.Stream)
	p = binary.AppendUvarint(p, r.Seq)
	v := r.Verdict
	var flag byte
	if v.Anomaly {
		flag = 1
	}
	p = append(p, flag)
	p = binary.AppendVarint(p, int64(v.Level))
	p = binary.AppendVarint(p, int64(v.Rank))
	p = appendString(p, v.Signature)
	p = binary.AppendUvarint(p, uint64(len(v.Evidence)))
	for _, e := range v.Evidence {
		p = appendString(p, e.Stage)
		p = binary.AppendVarint(p, int64(e.Level))
		var eb byte
		if e.Scored {
			eb |= 1
		}
		if e.Flagged {
			eb |= 2
		}
		p = append(p, eb)
		p = binary.BigEndian.AppendUint64(p, math.Float64bits(e.Score))
		p = binary.AppendVarint(p, int64(e.Rank))
	}
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...), p
}

// eventCursor decodes an event payload in place. A subscriber pays this
// per verdict, so the cursor allocates nothing beyond the strings it
// returns (an interposed bufio layer here once dominated subscriber CPU);
// the first malformed field latches err and turns the rest into no-ops.
type eventCursor struct {
	b   []byte
	err error
}

func (c *eventCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("serve: truncated event %s", what)
	}
}

func (c *eventCursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *eventCursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *eventCursor) u8(what string) byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.fail(what)
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *eventCursor) str(what string) string {
	n := c.uvarint(what)
	if c.err != nil {
		return ""
	}
	if n > maxStringLen {
		c.err = fmt.Errorf("serve: string of %d bytes exceeds limit", n)
		return ""
	}
	if uint64(len(c.b)) < n {
		c.fail(what)
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

func (c *eventCursor) f64(what string) float64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v
}

// readEvent parses the next event off a subscription stream. It returns
// io.EOF at a clean end of stream.
func readEvent(br *bufio.Reader) (Event, error) {
	var ev Event
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return ev, io.EOF
		}
		return ev, fmt.Errorf("serve: event length: %w", err)
	}
	if plen > maxEventLen {
		return ev, fmt.Errorf("serve: event of %d bytes exceeds limit", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return ev, fmt.Errorf("serve: truncated event: %w", err)
	}
	c := eventCursor{b: payload}
	ev.Stream = c.str("stream")
	ev.Seq = c.uvarint("seq")
	flag := c.u8("flags")
	ev.Verdict.Anomaly = flag&1 != 0
	ev.Verdict.Level = core.Level(c.varint("level"))
	ev.Verdict.Rank = int(c.varint("rank"))
	ev.Verdict.Signature = c.str("signature")
	n := c.uvarint("evidence count")
	if c.err == nil && n > maxEvidence {
		return ev, fmt.Errorf("serve: event with %d evidence entries", n)
	}
	if c.err == nil && n > 0 {
		ev.Verdict.Evidence = make([]core.LevelEvidence, n)
		for i := range ev.Verdict.Evidence {
			e := &ev.Verdict.Evidence[i]
			e.Stage = c.str("evidence stage")
			e.Level = core.Level(c.varint("evidence level"))
			eb := c.u8("evidence flags")
			e.Scored, e.Flagged = eb&1 != 0, eb&2 != 0
			e.Score = c.f64("evidence score")
			e.Rank = int(c.varint("evidence rank"))
			if c.err != nil {
				break
			}
		}
	}
	if c.err != nil {
		return ev, c.err
	}
	return ev, nil
}
