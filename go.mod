module icsdetect

go 1.21
