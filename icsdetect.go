// Package icsdetect is a Go implementation of the multi-level anomaly
// detection framework for industrial control systems of Feng, Li & Chana
// (DSN 2017): a Bloom-filter package-content detector over a learned
// signature database, combined with a stacked LSTM softmax classifier that
// flags packages whose signatures fall outside the top-k predicted set.
//
// The library is stdlib-only and ships with every substrate the paper
// depends on: pluggable SCADA testbed scenarios (the paper's gas pipeline
// plus the sibling water storage tank, both with the original datasets'
// schema and attack taxonomy), a Modbus protocol stack, a from-scratch
// LSTM trainer, the six comparison baselines of the paper's Table IV, and
// an experiment harness that regenerates every table and figure.
//
// # Quickstart
//
//	ds, _ := icsdetect.GenerateDataset(icsdetect.DatasetOptions{Packages: 30000, Seed: 1})
//	split, _ := icsdetect.Split(ds)
//	det, report, _ := icsdetect.Train(split, icsdetect.DefaultTrainOptions())
//	sess := det.NewSession()
//	for _, pkg := range split.Test {
//		if v := sess.Classify(pkg); v.Anomaly {
//			// raise an alert
//		}
//	}
//	_ = report
//
// See the examples directory for complete programs.
package icsdetect

import (
	"io"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/signature"
	"icsdetect/internal/trace"

	// Register the promoted baseline detection levels (pca, gmm, iforest,
	// bayesnet, svdd, bf4) with the stage registry.
	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/recon"
	// Register the built-in testbed scenarios.
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/watertank"
)

// Re-exported dataset types.
type (
	// Package is one ICS network package record (paper Table I).
	Package = dataset.Package
	// Dataset is an ordered package time series.
	Dataset = dataset.Dataset
	// AttackType labels the ground truth class (paper Table II).
	AttackType = dataset.AttackType
	// DataSplit is the chronological train/validation/test partition.
	DataSplit = dataset.Split
)

// Re-exported attack classes.
const (
	Normal = dataset.Normal
	NMRI   = dataset.NMRI
	CMRI   = dataset.CMRI
	MSCI   = dataset.MSCI
	MPCI   = dataset.MPCI
	MFCI   = dataset.MFCI
	DOS    = dataset.DOS
	Recon  = dataset.Recon
)

// Re-exported detector types.
type (
	// Detector is a trained two-level anomaly detection framework.
	Detector = core.Framework
	// Session is a streaming classification session over a Detector.
	Session = core.Session
	// Verdict is the per-package classification outcome.
	Verdict = core.Verdict
	// TrainReport captures training measurements (granularity, |S|, top-k
	// curves, chosen k).
	TrainReport = core.Report
	// TrainOptions configures Train.
	TrainOptions = core.Config
	// Granularity is the feature discretization setting (paper Table III).
	Granularity = signature.Granularity
	// Mode selects which detector levels a session or engine applies
	// (legacy two-level API; StackSpec composes arbitrary level stacks).
	Mode = core.Mode
	// StageDetector is one pluggable level of the detection stack.
	StageDetector = core.StageDetector
	// StageResult is one level's pre-fusion opinion on one package.
	StageResult = core.StageResult
	// StackSpec describes a detection stack: ordered level descriptors
	// plus the fusion policy combining their votes.
	StackSpec = core.StackSpec
	// StageSpec describes one level of a stack (kind + fusion weight).
	StageSpec = core.StageSpec
	// Fusion is the verdict fusion policy of a stack.
	Fusion = core.Fusion
	// Level identifies the detector level behind a verdict.
	Level = core.Level
	// LevelEvidence is one level's recorded outcome inside a Verdict.
	LevelEvidence = core.LevelEvidence
	// StageFactory wires a custom stage kind into the registry.
	StageFactory = core.StageFactory
	// Precision selects the numeric tier a stack's kernel-backed levels
	// run at: the f64 reference (default) or the opt-in f32 inference
	// tier (see the README's "Precision tiers" section).
	Precision = core.Precision
	// DynamicKConfig tunes the adaptive top-k controller of the
	// "lstm-dynamic" level.
	DynamicKConfig = core.DynamicKConfig
)

// DefaultDynamicKConfig derives adaptive-k controller bounds from the
// trained k.
func DefaultDynamicKConfig(trainedK int) DynamicKConfig {
	return core.DefaultDynamicKConfig(trainedK)
}

// Detector modes: the paper's combined two-level framework, or each level
// alone for ablation.
const (
	ModeCombined    = core.ModeCombined
	ModePackageOnly = core.ModePackageOnly
	ModeSeriesOnly  = core.ModeSeriesOnly
)

// Fusion policies: the paper's first-hit short-circuit (default), strict
// majority vote, and weighted score.
const (
	FusionFirstHit = core.FusionFirstHit
	FusionMajority = core.FusionMajority
	FusionWeighted = core.FusionWeighted
)

// Precision tiers.
const (
	// PrecisionF64 is the float64 reference tier (the default): its
	// verdicts are the golden corpora and never change.
	PrecisionF64 = core.PrecisionF64
	// PrecisionF32 is the float32 inference tier: f32 SIMD kernels at
	// twice the lane width, verdict-parity-gated against f64.
	PrecisionF32 = core.PrecisionF32
)

// ParsePrecision parses a -precision flag value ("", "f64", "f32", …).
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// Detection levels.
const (
	LevelNone       = core.LevelNone
	LevelPackage    = core.LevelPackage
	LevelTimeSeries = core.LevelTimeSeries
	LevelPCA        = core.LevelPCA
	LevelGMM        = core.LevelGMM
	LevelIForest    = core.LevelIForest
	LevelBayesNet   = core.LevelBayesNet
	LevelSVDD       = core.LevelSVDD
	LevelBF4        = core.LevelBF4
	LevelAE         = core.LevelAE
	LevelSeq2Seq    = core.LevelSeq2Seq
	LevelCNN        = core.LevelCNN
)

// DefaultStack returns the paper's two-level framework stack (bloom,lstm
// under first-hit fusion).
func DefaultStack() StackSpec { return core.DefaultStackSpec() }

// ParseStack parses a detection stack from the -levels/-fusion flag
// syntax: a comma-separated level list (each "kind" or "kind:weight") and
// a fusion policy name ("first-hit", "majority" or "weighted"). Empty
// levels means the default two-level stack.
//
//	spec, err := icsdetect.ParseStack("bloom,pca,lstm", "majority")
//	sess, err := det.NewStackSession(spec) // after det.TrainStages(spec, split, seed)
func ParseStack(levels, fusion string) (StackSpec, error) {
	return core.ParseStackSpec(levels, fusion)
}

// StageKinds lists the registered detection level kinds ("bloom", "lstm",
// "lstm-dynamic", the promoted Table IV baselines, plus anything an
// embedding program registered).
func StageKinds() []string { return core.StageKinds() }

// RegisterStage adds a custom detection level kind to the registry; see
// the "Detection levels" section of the README for the contract.
func RegisterStage(kind string, f StageFactory) { core.RegisterStage(kind, f) }

// Re-exported concurrent detection engine types. The engine classifies
// many package streams at once — one stream per monitored device or link —
// sharded across worker goroutines with micro-batched LSTM inference, and
// produces per-stream verdicts identical to a sequential Session.
type (
	// Engine is the sharded multi-stream detection engine.
	Engine = engine.Engine
	// EngineConfig tunes shards, micro-batch width, queue depth and mode.
	EngineConfig = engine.Config
	// EngineResult is one classified package delivered to the handler.
	EngineResult = engine.Result
	// EngineHandler receives every classified package on shard goroutines.
	EngineHandler = engine.Handler
	// EngineStats is an engine-wide counter snapshot.
	EngineStats = engine.Stats
	// ShardStats is a per-shard counter snapshot.
	ShardStats = engine.ShardStats
)

// NewEngine builds and starts a concurrent detection engine over a trained
// detector. Feed it with Submit (one stream per device), read verdicts in
// the handler, snapshot throughput with Stats, and release it with Stop:
//
//	eng, _ := icsdetect.NewEngine(det, icsdetect.EngineConfig{}, func(r icsdetect.EngineResult) {
//		if r.Verdict.Anomaly {
//			// raise an alert for r.Stream
//		}
//	})
//	for pkg := range captured {
//		eng.Submit(deviceID(pkg), pkg)
//	}
//	eng.Stop()
func NewEngine(det *Detector, cfg EngineConfig, handler EngineHandler) (*Engine, error) {
	return engine.New(det, cfg, handler)
}

// Re-exported trace capture/replay types. A trace is a deterministic
// recording of labeled wire traffic (see internal/trace for the binary
// format): record one off the simulator or the live tap, then replay it
// through a detector — as fast as possible or on its own timeline — and the
// verdicts are bitwise-reproducible across runs, replay paths and kernel
// builds. The repository ships a golden conformance corpus of such traces
// under testdata/traces.
type (
	// TraceHeader describes a trace (format, scenario, model fingerprint,
	// register map).
	TraceHeader = trace.Header
	// TraceRecord is one captured frame with its timestamp delta and label.
	TraceRecord = trace.Record
	// TraceRecorder captures frames into a trace stream.
	TraceRecorder = trace.Recorder
	// ReplayConfig tunes a replay run (throughput vs timed, session vs
	// engine).
	ReplayConfig = trace.ReplayConfig
	// ReplayResult is the scored outcome of a replay, including per-attack
	// detection latency.
	ReplayResult = trace.Result
)

// NewTraceRecorder writes the trace header for h to w and returns a
// recorder; see TraceRecorder.RecordSim and RecordTap for the capture
// hooks.
func NewTraceRecorder(w io.Writer, h TraceHeader) (*TraceRecorder, error) {
	return trace.NewRecorder(w, h)
}

// ReadTrace reads a whole recorded trace.
func ReadTrace(r io.Reader) (TraceHeader, []*TraceRecord, error) {
	return trace.ReadAll(r)
}

// ReplayTrace drives a recorded trace through a trained detector and
// scores the verdicts against the trace's labels.
func ReplayTrace(det *Detector, h TraceHeader, recs []*TraceRecord, cfg ReplayConfig) (*ReplayResult, error) {
	return trace.Replay(det, h, recs, cfg)
}

// Scenarios lists the registered testbed scenario names ("gaspipeline",
// "watertank", plus anything an embedding program registered).
func Scenarios() []string { return scenario.Names() }

// DatasetOptions configures GenerateDataset.
type DatasetOptions struct {
	// Scenario names the testbed to simulate (see Scenarios). Empty means
	// the paper's gas pipeline.
	Scenario string
	// Packages is the approximate capture size.
	Packages int
	// Seed makes generation deterministic.
	Seed uint64
	// AttackRatio is the target fraction of attack packages; negative
	// disables attacks entirely. Zero means the original dataset's ratio
	// (≈ 0.219).
	AttackRatio float64
}

// GenerateDataset produces a labeled simulated SCADA capture with the
// original datasets' schema for the chosen testbed scenario (see
// internal/gaspipeline and internal/watertank for the plant models).
func GenerateDataset(opts DatasetOptions) (*Dataset, error) {
	sc, err := scenario.Get(opts.Scenario)
	if err != nil {
		return nil, err
	}
	cfg := scenario.GenConfig{
		TotalPackages: opts.Packages,
		AttackRatio:   0.219,
		Seed:          opts.Seed,
	}
	switch {
	case opts.AttackRatio < 0:
		cfg.AttackRatio = 0
	case opts.AttackRatio > 0:
		cfg.AttackRatio = opts.AttackRatio
	}
	return sc.Generate(cfg)
}

// Split partitions a dataset 6:2:2 chronologically, removing anomalies and
// short fragments from the train and validation parts (paper §VIII).
func Split(ds *Dataset) (*DataSplit, error) {
	return dataset.MakeSplit(ds, dataset.SplitConfig{})
}

// DefaultTrainOptions returns a configuration that trains in about a
// minute on mid-size captures; PaperScaleTrainOptions matches the paper's
// 2×256 LSTM and 50 epochs.
func DefaultTrainOptions() TrainOptions { return core.DefaultConfig() }

// PaperScaleTrainOptions returns the paper's full-scale configuration.
func PaperScaleTrainOptions() TrainOptions { return core.PaperScale() }

// Train fits the two-level framework on an attack-free split.
func Train(split *DataSplit, opts TrainOptions) (*Detector, *TrainReport, error) {
	return core.Train(split, opts)
}

// Load restores a detector saved with (*Detector).Save.
func Load(r io.Reader) (*Detector, error) { return core.Load(r) }

// ReadDatasetARFF parses a dataset in the ARFF format of the original
// Morris gas pipeline capture.
func ReadDatasetARFF(r io.Reader) (*Dataset, error) { return dataset.ReadARFF(r) }

// WriteDatasetARFF serializes a dataset in ARFF.
func WriteDatasetARFF(w io.Writer, ds *Dataset) error { return dataset.WriteARFF(w, ds) }
