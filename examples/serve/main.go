// Serving-daemon quickstart: boot the wire-to-verdict daemon in-process on
// the committed golden corpus, replay recorded traces to it over real TCP,
// watch verdicts arrive on the subscription stream, scrape the ops
// endpoint, hot-swap the model mid-flight, and drain.
//
// Run from the repository root (the committed corpus lives in testdata/):
//
//	go run ./examples/serve
//
// The same wire protocols are what `icsserved` speaks as a standalone
// daemon — this example is the embedded, single-process version of the
// deployment it demonstrates.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/serve"
)

func main() {
	// 1. The committed gas-pipeline model: the same framework snapshot the
	//    golden-trace conformance suite pins.
	f, err := os.Open(filepath.Join("testdata", "traces", "model.fw"))
	if err != nil {
		log.Fatalf("open committed model (run from the repo root): %v", err)
	}
	fw, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Boot the daemon: engine + ingest, verdict and ops listeners.
	srv, err := serve.New(serve.Config{
		Models: []serve.Model{{
			Name:      "gaspipeline",
			Framework: fw,
			Registers: gaspipeline.Registers(),
		}},
		Engine: engine.Config{MaxBatch: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	ingest, err := srv.ListenIngest("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	verdicts, err := srv.ListenVerdicts("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ops, err := srv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon up: ingest %s, verdicts %s, ops http://%s\n\n", ingest, verdicts, ops)

	// 3. Subscribe to the verdict stream and print the first few alerts
	//    per attack episode, with the per-level evidence behind each.
	sub, err := serve.Subscribe(verdicts)
	if err != nil {
		log.Fatal(err)
	}
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		printed := make(map[string]int)
		for {
			ev, err := sub.Next()
			if err != nil {
				if err != io.EOF {
					log.Printf("subscriber: %v", err)
				}
				return
			}
			if !ev.Verdict.Anomaly || printed[ev.Stream] >= 2 {
				continue
			}
			printed[ev.Stream]++
			fmt.Printf("ALERT %-12s pkg %-4d level %d  signature %s\n",
				ev.Stream, ev.Seq, ev.Verdict.Level, ev.Verdict.Signature)
			for _, e := range ev.Verdict.Evidence {
				fmt.Printf("      evidence: %-8s flagged=%-5v score=%.3f\n",
					e.Stage, e.Flagged, e.Score)
			}
		}
	}()

	// 4. Replay two recorded attack episodes concurrently over TCP — each
	//    connection is one device stream with its own recurrent state.
	var wg sync.WaitGroup
	for _, episode := range []string{"mpci", "dos"} {
		wg.Add(1)
		go func(episode string) {
			defer wg.Done()
			raw, err := os.ReadFile(filepath.Join("testdata", "traces", episode+".trace"))
			if err != nil {
				log.Fatal(err)
			}
			n, err := serve.Replay(ingest, raw, serve.ReplayOptions{Stream: episode})
			if err != nil {
				log.Fatalf("replay %s: %v", episode, err)
			}
			fmt.Printf("replayed %s: %d packages accepted\n", episode, n)
		}(episode)
	}
	wg.Wait()

	// 5. Ops surface: scrape interval stats, then hot-swap the model from
	//    its snapshot file (a retrained icstrain -checkpoint in production)
	//    behind an engine barrier — no restart, live streams undisturbed.
	resp, err := http.Get(fmt.Sprintf("http://%s/stats", ops))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nGET /stats -> %s\n", resp.Status)
	resp, err = http.Post(fmt.Sprintf(
		"http://%s/swap?model=gaspipeline&path=%s",
		ops, filepath.Join("testdata", "traces", "model.fw")), "", nil)
	if err != nil {
		log.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /swap -> %s", msg)

	// 6. Graceful drain: every admitted package classified, subscribers
	//    flushed and detached (the goroutine above sees a clean EOF).
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	<-subDone
	st := srv.Engine().Stats()
	fmt.Printf("\ndrained: %d packages across %d streams, %d anomalous\n",
		st.Packages, st.Streams, st.Packages-st.Clean)
}
