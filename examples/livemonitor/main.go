// Live monitor: a real Modbus/TCP control loop over localhost with an
// in-path network tap feeding the anomaly detector.
//
// Topology:
//
//	master ──TCP──▶ tap proxy ──TCP──▶ slave (plant + PID controller)
//	                   │
//	                   ▼ decoded packages
//	               detector
//
// Phase 1 observes attack-free traffic and trains the two-level framework
// on it ("air-gapped" baseline, paper §IV). Phase 2 lets an attacker client
// inject malicious parameter and state commands through the same proxy; the
// concurrent detection engine classifies every package in flight, one
// stream per slave unit.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/signature"
	"icsdetect/internal/tap"
)

// Register layout shared by master, slave and tap (mirrors the simulator).
const (
	regSetpoint = iota
	regGain
	regResetRate
	regDeadband
	regCycleTime
	regRate
	regMode
	regScheme
	regPump
	regSolenoid
	regPressure
	numRegs
)

const unitID = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- Slave: register bank + plant + PID controller --------------------
	bank := modbus.NewRegisterBank(numRegs, 4)
	bank.MarkReadOnly(regPressure)
	rng := mathx.NewRNG(11)
	plant, err := gaspipeline.NewPlant(gaspipeline.DefaultPlantConfig(), rng.Split())
	if err != nil {
		return err
	}
	initial := gaspipeline.ControllerState{
		Setpoint: 8, Gain: 0.45, ResetRate: 0.15, Deadband: 0.05,
		CycleTime: 0.25, Rate: 0.02, Mode: gaspipeline.ModeAuto,
	}
	ctrl, err := gaspipeline.NewController(initial, 20)
	if err != nil {
		return err
	}
	writeState(bank, initial)

	// The device loop: applies written registers, steps the plant, and
	// publishes the pressure measurement. It runs accelerated (every 5 ms
	// simulates one 250 ms control cycle).
	stopPlant := make(chan struct{})
	plantDone := make(chan struct{})
	go func() {
		defer close(plantDone)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopPlant:
				return
			case <-ticker.C:
				st := readState(bank)
				ctrl.ApplyUnchecked(st)
				measured := plant.Measure()
				ctrl.Actuate(plant, measured)
				plant.Step(0.25)
				if err := bank.StoreMeasurement(regPressure, uint16(mathx.Clamp(measured*100, 0, 65535))); err != nil {
					return
				}
			}
		}
	}()

	server := modbus.NewServer(bank, unitID)
	slaveAddr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer server.Close()

	// ---- Tap proxy ---------------------------------------------------------
	monitor := tap.New(slaveAddr.String(), gaspipeline.Registers())
	tapAddr, err := monitor.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer monitor.Close()

	// ---- Master ------------------------------------------------------------
	master, err := modbus.Dial(tapAddr, unitID, 2*time.Second)
	if err != nil {
		return err
	}
	defer master.Close()

	operator := newOperator(initial, rng.Split())
	pollCycle := func(st gaspipeline.ControllerState) error {
		if err := master.WriteMultipleRegisters(0, stateRegs(st)); err != nil {
			return err
		}
		if _, err := master.ReadHoldingRegisters(0, numRegs); err != nil {
			return err
		}
		return nil
	}

	// ---- Phase 1: observe clean traffic and train --------------------------
	fmt.Println("phase 1: observing attack-free traffic …")
	const trainCycles = 1500
	for i := 0; i < trainCycles; i++ {
		if err := pollCycle(operator.step(plant)); err != nil {
			return fmt.Errorf("poll cycle %d: %w", i, err)
		}
	}
	clean := monitor.Drain()
	fmt.Printf("captured %d clean packages, training …\n", len(clean))

	split, err := dataset.MakeSplit(&dataset.Dataset{Packages: clean},
		dataset.SplitConfig{TrainFrac: 0.75, ValidationFrac: 0.24})
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = 8
	cfg.Fit.BatchSize = 4
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("detector ready: |S|=%d k=%d errv=%.4f\n",
		report.Signatures, report.ChosenK, report.PackageErrv)

	// ---- Phase 2: live detection with an attacker --------------------------
	fmt.Println("phase 2: live detection with attacker in the loop …")
	attacker, err := modbus.Dial(tapAddr, unitID, 2*time.Second)
	if err != nil {
		return err
	}
	defer attacker.Close()

	// The engine shards streams across workers and micro-batches the LSTM
	// steps; this loop has a single slave unit, so it exercises the
	// single-stream path with verdicts identical to a sequential session.
	var alerts atomic.Int64
	eng, err := engine.New(fw, engine.Config{}, func(r engine.Result) {
		if r.Verdict.Anomaly {
			if n := alerts.Add(1); n <= 8 {
				fmt.Printf("  ALERT %-12s stream=%s signature=%s\n",
					r.Verdict.Level, r.Stream, r.Verdict.Signature)
			}
		}
	})
	if err != nil {
		return err
	}
	streamKeys := map[int]string{}
	classifyPending := func() error {
		for _, p := range monitor.Drain() {
			key, ok := streamKeys[int(p.Address)]
			if !ok {
				key = fmt.Sprintf("unit-%d", int(p.Address))
				streamKeys[int(p.Address)] = key
			}
			if err := eng.Submit(key, p); err != nil {
				return err
			}
		}
		return nil
	}

	atkRng := rng.Split()
	const liveCycles = 400
	for i := 0; i < liveCycles; i++ {
		if err := pollCycle(operator.step(plant)); err != nil {
			return err
		}
		// Every ~25 cycles the attacker injects a malicious command.
		if i%25 == 24 {
			mal := readState(bank)
			if atkRng.Bernoulli(0.5) {
				mal.Setpoint = atkRng.Range(0, 18) // MPCI-style parameter change
			} else {
				mal.Mode, mal.Pump = gaspipeline.ModeManual, 1 // MSCI-style state change
			}
			if err := attacker.WriteMultipleRegisters(0, stateRegs(mal)); err != nil {
				return err
			}
			// Operator restores on the next poll.
			if err := pollCycle(operator.state); err != nil {
				return err
			}
		}
		if err := classifyPending(); err != nil {
			return err
		}
	}
	if err := classifyPending(); err != nil {
		return err
	}
	eng.Stop()

	close(stopPlant)
	<-plantDone
	st := eng.Stats()
	fmt.Printf("live phase: %d packages classified on %d streams, %d alerts raised (%.1f pkg/batch)\n",
		st.Packages, st.Streams, st.Anomalies(), st.MeanBatch())
	if st.Anomalies() == 0 {
		return fmt.Errorf("expected the injected attacks to raise alerts")
	}
	return nil
}

// ---- operator model --------------------------------------------------------

type operator struct {
	state gaspipeline.ControllerState
	rng   *mathx.RNG
}

func newOperator(initial gaspipeline.ControllerState, rng *mathx.RNG) *operator {
	return &operator{state: initial, rng: rng}
}

// step occasionally moves the setpoint among legal values, like the
// simulator's operator.
func (o *operator) step(plant *gaspipeline.Plant) gaspipeline.ControllerState {
	if o.rng.Bernoulli(0.02) {
		legal := []float64{6, 7, 8, 9, 10}
		o.state.Setpoint = legal[o.rng.Intn(len(legal))]
	}
	return o.state
}

// ---- register codec ---------------------------------------------------------

func stateRegs(st gaspipeline.ControllerState) []uint16 {
	return []uint16{
		uint16(st.Setpoint * 100), uint16(st.Gain * 100), uint16(st.ResetRate * 100),
		uint16(st.Deadband * 100), uint16(st.CycleTime * 1000), uint16(st.Rate * 100),
		uint16(st.Mode), uint16(st.Scheme), uint16(st.Pump), uint16(st.Solenoid),
	}
}

func writeState(bank *modbus.RegisterBank, st gaspipeline.ControllerState) {
	for i, v := range stateRegs(st) {
		if err := bank.StoreMeasurement(uint16(i), v); err != nil {
			panic(err)
		}
	}
}

func readState(bank *modbus.RegisterBank) gaspipeline.ControllerState {
	regs := bank.Snapshot()
	return gaspipeline.ControllerState{
		Setpoint:  float64(regs[regSetpoint]) / 100,
		Gain:      float64(regs[regGain]) / 100,
		ResetRate: float64(regs[regResetRate]) / 100,
		Deadband:  float64(regs[regDeadband]) / 100,
		CycleTime: float64(regs[regCycleTime]) / 1000,
		Rate:      float64(regs[regRate]) / 100,
		Mode:      int(regs[regMode]),
		Scheme:    int(regs[regScheme]),
		Pump:      int(regs[regPump]),
		Solenoid:  int(regs[regSolenoid]),
	}
}
