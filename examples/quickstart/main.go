// Quickstart: generate a simulated SCADA capture for a testbed scenario,
// train the two-level detector, classify the held-out traffic, then
// compose a three-level detection stack (bloom,pca,lstm under
// majority-vote fusion) and print the per-level evidence behind its first
// alerts.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -scenario watertank
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"icsdetect"
)

func main() {
	scName := flag.String("scenario", "",
		"testbed scenario: "+strings.Join(icsdetect.Scenarios(), ", "))
	flag.Parse()

	// 1. Simulated SCADA capture with the Morris datasets' schema: ~22%
	//    attack packages across all seven attack types.
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{
		Scenario: *scName,
		Packages: 12000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d packages\n", ds.Len())

	// 2. Chronological 6:2:2 split; anomalies are removed from the train
	//    and validation parts (the detector learns from normal traffic
	//    only).
	split, err := icsdetect.Split(ds)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train both levels. The defaults pick a discretization suited to
	//    small captures and select k on the validation set.
	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = icsdetect.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	opts.Hidden = []int{32, 32}
	opts.Fit.Epochs = 10
	opts.Fit.BatchSize = 4
	det, report, err := icsdetect.Train(split, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature database: %d signatures, validation error %.3f, k=%d\n",
		report.Signatures, report.PackageErrv, report.ChosenK)

	// 4. Stream the test traffic through a classification session.
	sess := det.NewSession()
	var alerts, truePositives, attacks int
	for _, pkg := range split.Test {
		v := sess.Classify(pkg)
		if pkg.IsAttack() {
			attacks++
		}
		if v.Anomaly {
			alerts++
			if pkg.IsAttack() {
				truePositives++
			}
		}
	}
	fmt.Printf("test packages: %d (%d attacks)\n", len(split.Test), attacks)
	fmt.Printf("alerts: %d, true positives: %d (precision %.2f, recall %.2f)\n",
		alerts, truePositives,
		float64(truePositives)/float64(alerts),
		float64(truePositives)/float64(attacks))

	// 5. Compose a deeper stack: promote the PCA baseline to a streaming
	//    level and fuse three levels by majority vote. Verdicts of
	//    non-default stacks carry per-level evidence — what every level
	//    saw before fusion.
	spec, err := icsdetect.ParseStack("bloom,pca,lstm", "majority")
	if err != nil {
		log.Fatal(err)
	}
	if err := det.TrainStages(spec, split, 1); err != nil {
		log.Fatal(err)
	}
	stacked, err := det.NewStackSession(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstack %s — evidence behind the first alerts:\n", spec)
	shown := 0
	for _, pkg := range split.Test {
		v := stacked.Classify(pkg)
		if !v.Anomaly || shown >= 3 {
			continue
		}
		shown++
		fmt.Printf("alert at level %s (signature %s, label %s):\n", v.Level, v.Signature, pkg.Label)
		for _, ev := range v.Evidence {
			switch {
			case !ev.Scored:
				fmt.Printf("  %-6s abstained\n", ev.Stage)
			case ev.Flagged:
				fmt.Printf("  %-6s anomalous (score %.4g, rank %d)\n", ev.Stage, ev.Score, ev.Rank)
			default:
				fmt.Printf("  %-6s clean     (score %.4g, rank %d)\n", ev.Stage, ev.Score, ev.Rank)
			}
		}
	}
}
