// Quickstart: generate a simulated SCADA capture for a testbed scenario,
// train the two-level detector, and classify the held-out traffic.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -scenario watertank
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"icsdetect"
)

func main() {
	scName := flag.String("scenario", "",
		"testbed scenario: "+strings.Join(icsdetect.Scenarios(), ", "))
	flag.Parse()

	// 1. Simulated SCADA capture with the Morris datasets' schema: ~22%
	//    attack packages across all seven attack types.
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{
		Scenario: *scName,
		Packages: 12000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d packages\n", ds.Len())

	// 2. Chronological 6:2:2 split; anomalies are removed from the train
	//    and validation parts (the detector learns from normal traffic
	//    only).
	split, err := icsdetect.Split(ds)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train both levels. The defaults pick a discretization suited to
	//    small captures and select k on the validation set.
	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = icsdetect.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	opts.Hidden = []int{32, 32}
	opts.Fit.Epochs = 10
	opts.Fit.BatchSize = 4
	det, report, err := icsdetect.Train(split, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature database: %d signatures, validation error %.3f, k=%d\n",
		report.Signatures, report.PackageErrv, report.ChosenK)

	// 4. Stream the test traffic through a classification session.
	sess := det.NewSession()
	var alerts, truePositives, attacks int
	for _, pkg := range split.Test {
		v := sess.Classify(pkg)
		if pkg.IsAttack() {
			attacks++
		}
		if v.Anomaly {
			alerts++
			if pkg.IsAttack() {
				truePositives++
			}
		}
	}
	fmt.Printf("test packages: %d (%d attacks)\n", len(split.Test), attacks)
	fmt.Printf("alerts: %d, true positives: %d (precision %.2f, recall %.2f)\n",
		alerts, truePositives,
		float64(truePositives)/float64(alerts),
		float64(truePositives)/float64(attacks))
}
