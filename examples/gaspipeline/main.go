// Gas pipeline walkthrough: the full offline workflow of the paper on a
// simulated capture — dataset generation, ARFF round trip, training with
// probabilistic noise, per-attack evaluation, and model persistence.
//
//	go run ./examples/gaspipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"icsdetect"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate and persist a capture the way cmd/icsgen would.
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{Packages: 20000, Seed: 7})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "gaspipeline")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	arffPath := filepath.Join(dir, "capture.arff")
	f, err := os.Create(arffPath)
	if err != nil {
		return err
	}
	if err := icsdetect.WriteDatasetARFF(f, ds); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Printf("capture written to %s\n", arffPath)

	// Read it back (any Morris-format ARFF capture works here).
	f, err = os.Open(arffPath)
	if err != nil {
		return err
	}
	loaded, err := icsdetect.ReadDatasetARFF(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d packages\n", loaded.Len())

	split, err := icsdetect.Split(loaded)
	if err != nil {
		return err
	}

	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = icsdetect.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	opts.Hidden = []int{48, 48}
	opts.Fit.Epochs = 10
	det, report, err := icsdetect.Train(split, opts)
	if err != nil {
		return err
	}
	fmt.Printf("trained: |S|=%d, k=%d, package-level validation error %.4f\n",
		report.Signatures, report.ChosenK, report.PackageErrv)

	// Evaluate per attack type, the paper's Table V view.
	eval := det.Evaluate(split.Test, core.ModeCombined)
	fmt.Printf("combined framework: %v\n", eval.Summary)
	for _, at := range dataset.AttackTypes {
		if eval.PerAttack.Total[at] > 0 {
			fmt.Printf("  %-6s detected %.2f (%d packages)\n",
				at, eval.PerAttack.Ratio(at), eval.PerAttack.Total[at])
		}
	}

	// Ablation: how much does each level contribute?
	pkgOnly := det.Evaluate(split.Test, core.ModePackageOnly)
	serOnly := det.Evaluate(split.Test, core.ModeSeriesOnly)
	fmt.Printf("package level only: %v\n", pkgOnly.Summary)
	fmt.Printf("time-series level only: %v\n", serOnly.Summary)

	// Persist and reload; verdicts must be identical.
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		return err
	}
	restored, err := icsdetect.Load(&buf)
	if err != nil {
		return err
	}
	again := restored.Evaluate(split.Test, core.ModeCombined)
	if again.Confusion != eval.Confusion {
		return fmt.Errorf("restored model disagrees: %+v vs %+v", again.Confusion, eval.Confusion)
	}
	fmt.Printf("model round-trip verified (%d KB in memory)\n", restored.MemoryBytes()/1024)
	return nil
}
