// Tuning walkthrough: the paper's two model-selection procedures on a
// simulated capture — the §IV-B granularity search (find the most
// fine-grained discretization with validation error below θ) and the
// §V-A-2 top-k selection (find the minimal k with top-k error below θ).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"icsdetect"
	"icsdetect/internal/core"
	"icsdetect/internal/signature"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{Packages: 12000, Seed: 3})
	if err != nil {
		return err
	}
	split, err := icsdetect.Split(ds)
	if err != nil {
		return err
	}

	// ---- Granularity search (paper Fig. 5 / Table III) ---------------------
	search := signature.DefaultSearchConfig()
	search.Theta = 0.015
	search.PressureGrid = []int{3, 5, 8}
	search.WPressure = 1
	search.SetpointGrid = []int{3, 5}
	search.PIDGrid = []int{2, 4, 8}
	res, err := signature.Search(split.Train, split.Validation, search)
	if err != nil {
		return err
	}
	fmt.Println("granularity search (errv must stay below θ=0.015):")
	for _, p := range res.Points {
		marker := " "
		if p.Granularity == res.Best {
			marker = "*"
		}
		fmt.Printf(" %s pressure=%-2d setpoint=%-2d pid=%-2d |S|=%-4d errv=%.4f feasible=%v\n",
			marker, p.Granularity.PressureBins, p.Granularity.SetpointBins,
			p.Granularity.PIDClusters, p.Signatures, p.Errv, p.Feasible)
	}
	fmt.Printf("chosen granularity: %+v (|S|=%d)\n\n", res.Best, res.BestDB.Size())

	// ---- Train with the chosen granularity and inspect k selection --------
	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = res.Best
	opts.Hidden = []int{64, 64}
	opts.Fit.Epochs = 16
	opts.Fit.BatchSize = 4
	opts.ThetaSeries = 0.05
	_, report, err := icsdetect.Train(split, opts)
	if err != nil {
		return err
	}

	fmt.Println("top-k error on the validation set (paper Fig. 6):")
	for k := 1; k <= len(report.ValidationCurve.Err); k++ {
		marker := " "
		if k == report.ChosenK {
			marker = "*"
		}
		fmt.Printf(" %s k=%-2d err=%.4f\n", marker, k, report.ValidationCurve.Err[k-1])
	}
	fmt.Printf("chosen k = %d (minimal k with error below θ=%.2f)\n",
		report.ChosenK, opts.ThetaSeries)

	// The same rule at a stricter θ picks a larger k: fewer false
	// positives, weaker sensitivity (paper §VIII-D discussion).
	det2, report2, err := icsdetect.Train(split, withTheta(opts, 0.02))
	if err != nil {
		return err
	}
	fmt.Printf("with θ=0.02 the rule picks k = %d\n", report2.ChosenK)
	eval := det2.Evaluate(split.Test, core.ModeCombined)
	fmt.Printf("resulting test metrics: %v\n", eval.Summary)
	return nil
}

func withTheta(opts icsdetect.TrainOptions, theta float64) icsdetect.TrainOptions {
	opts.ThetaSeries = theta
	return opts
}
