// Record → replay → metrics: capture a labeled attack scenario from a
// testbed simulator into the binary trace format, then replay the recorded
// wire frames through the detector — once as fast as possible (throughput
// mode) and once on the trace's own timeline (latency mode) — and report
// per-attack detection latency.
//
//	go run ./examples/replay
//	go run ./examples/replay -scenario watertank
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/trace"

	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/watertank"
)

func main() {
	scName := flag.String("scenario", scenario.Default,
		"testbed scenario: "+strings.Join(scenario.Names(), ", "))
	flag.Parse()
	sc, err := scenario.Get(*scName)
	if err != nil {
		log.Fatal(err)
	}
	// 1. Train a small detector on a *recorded* normal capture, so the
	//    model learns exactly the feature distributions that replay
	//    reconstructs from wire bytes.
	fmt.Printf("training on a recorded normal %s capture...\n", sc.Name())
	det, err := trace.TrainCorpusModel(sc, 8000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model fingerprint %s\n", det.Fingerprint())

	// 2. Record a scenario: normal polling with a DoS episode and a
	//    reconnaissance sweep, captured off the simulator's frame sink
	//    into a trace file. The same script drives any registered testbed.
	sim, err := sc.NewSim(42)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ { // let the control loop settle, unrecorded
		sim.RunNormalCycle(dataset.Normal)
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, trace.SimHeader("demo", det.Fingerprint(), sc.Registers()))
	if err != nil {
		log.Fatal(err)
	}
	sim.SetFrameSink(rec.RecordSim)
	for i := 0; i < 12; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := sim.RunAttackEpisode(dataset.DOS, 3); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := sim.RunAttackEpisode(dataset.Recon, 8); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "icsdetect-demo.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d frames (%d bytes) to %s\n", rec.Count(), buf.Len(), path)

	// 3. Replay the trace file. Throughput mode races through the recorded
	//    frames via the batched engine; latency mode honors the recorded
	//    timeline (here 20x faster than real time).
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	header, records, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	fast, err := trace.Replay(det, header, records, trace.ReplayConfig{
		Engine: &engine.Config{Shards: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput replay: %d packages of %.1fs recorded traffic in %v (%.0f pkg/s)\n",
		len(fast.Verdicts), fast.TraceSeconds, fast.Wall, fast.PerSecond())

	timed, err := trace.Replay(det, header, records, trace.ReplayConfig{Timed: true, Speed: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency replay (20x): same verdicts in %v\n", timed.Wall)

	// 4. Metrics: verdict summary plus per-attack detection latency on the
	//    trace's own clock.
	fmt.Printf("\nverdicts: %v\n", fast.Summary)
	var attacks []dataset.AttackType
	for at := range fast.Latency.Episodes {
		attacks = append(attacks, at)
	}
	sort.Slice(attacks, func(i, j int) bool { return attacks[i] < attacks[j] })
	for _, at := range attacks {
		fmt.Printf("%-6v detected %d/%d episodes, ratio %.2f, detection latency mean %.3fs\n",
			at, fast.Latency.Detected[at], fast.Latency.Episodes[at],
			fast.PerAttack.Ratio(at), fast.Latency.MeanLatency(at))
	}
}
