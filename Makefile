GO ?= go

.PHONY: check build fmt vet test race race-quick conformance serve-smoke bench bench-json bench-serve bench-smoke bench-stack bench-train fuzz-smoke

check: fmt vet build test race-quick fuzz-smoke bench-smoke

# build also cross-compiles for arm64 so the non-SIMD kernel stubs
# (gemm_noasm.go) stay in signature-lockstep with the amd64 assembly.
build:
	$(GO) build ./...
	GOARCH=arm64 $(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full tree under the race detector (the training integration tests make
# this take a few minutes); race-quick covers the concurrency-heavy engine
# with full tests and everything else in short mode.
race:
	$(GO) test -race ./...

# The -short sweep already covers internal/trace and the root golden-trace
# conformance tests under -race (neither Short-skips); the explicit
# conformance line below guards that coverage against a future Short-gate.
# The TestTraceConformance pattern also matches TestTraceConformanceF32, so
# the f32 verdict-parity suite runs under -race here as well. Keep -race on
# this quick subset only — a full -race sweep takes minutes on the 1-CPU CI
# runner.
race-quick:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/engine/
	$(GO) test -race -short ./internal/serve/
	$(GO) test -race -run 'TestTraceConformance' .

# Boot the serving daemon on ephemeral ports and replay both committed
# golden corpora into it over real TCP — concurrent connections, one
# mid-replay hot-swap through the HTTP ops endpoint, SIGTERM drain — and
# require every stream's verdict sequence to match the goldens byte for
# byte. This is the CI smoke gate for cmd/icsserved.
serve-smoke:
	$(GO) run ./cmd/icsserved -selftest

# The scenario-matrix golden conformance suite alone: both testbeds x
# {sequential, engine} x {f64, f32} precision tiers x {avx512, avx2,
# scalar} kernel tiers against the committed corpora — the f32 tier must
# reproduce the f64 goldens bytewise (verdict parity), on every kernel
# tier, including mixed-precision streams sharing engine shards — plus the
# mixed-scenario engine and cross-scenario parity gates, and the stack
# conformance suite, which locks sequential==engine bitwise equivalence
# for composed level stacks (freshly trained bloom,pca,lstm under
# majority-vote, dynamic-k, all fusion policies, and the reconstruction
# stages ae/seq2seq/cnn with watertank MPCI/MFCI detection parity) beyond
# what the two-level goldens cover.
conformance:
	$(GO) test -v -run 'TestTraceConformance|TestStackConformance' .

bench: bench-stack
	$(GO) test -run=NONE -bench=. -benchmem .

# Detection-stack benchmark: per-level time share and sequential vs engine
# throughput across level stacks (bloom, bloom+lstm, bloom+pca+lstm,
# all-levels, bloom+lstm+ae). Results are recorded in BENCH.md.
bench-stack:
	$(GO) run ./cmd/icsbench -stackbench -packages 8000

# Machine-readable benchmark records: the -stackbench matrix at both
# precision tiers plus the -kernelbench kernel × precision × tier matrix,
# as JSON. The BENCH_*.json files are committed alongside BENCH.md so
# tooling can diff throughput across PRs without scraping tables.
bench-json:
	$(GO) run ./cmd/icsbench -stackbench -packages 8000 -json > BENCH_STACK.json
	$(GO) run ./cmd/icsbench -stackbench -packages 8000 -precision f32 -json > BENCH_STACK_F32.json
	$(GO) run ./cmd/icsbench -kernelbench -json > BENCH_KERNELS.json
	$(GO) run ./cmd/icsbench -servebench -json > BENCH_SERVE.json

# Wire-to-verdict serving benchmark: a real serve.Server on loopback TCP
# under 64 concurrent replay connections and 8 verdict subscribers, the
# per-package admission path vs the burst path, with cross-mode verdict
# parity enforced. Results are recorded in BENCH.md / BENCH_SERVE.json.
bench-serve:
	$(GO) run ./cmd/icsbench -servebench

# Short coverage-guided runs of the Modbus codec fuzzers, seeded from the
# golden corpus frames (decode→encode must stay stable, no panics on
# arbitrary bytes).
fuzz-smoke:
	$(GO) test ./internal/modbus/ -run=NONE -fuzz=FuzzPDUDecode -fuzztime=5s
	$(GO) test ./internal/modbus/ -run=NONE -fuzz=FuzzFrameDecode -fuzztime=5s

# A quick engine-throughput smoke: proves the batched multi-stream path
# still works and reports pkg/s without the full benchmark suite, plus a
# small stack benchmark exercising the per-stage-kind engine dispatch and
# the per-kernel microbenchmarks (dense vs one-hot × kernel tiers).
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkEngineThroughput/engine/shards=8/streams=256' -benchtime=50x .
	$(GO) run ./cmd/icsbench -stackbench -packages 4000
	$(GO) run ./cmd/icsbench -kernelbench
	$(GO) run ./cmd/icsbench -servebench -conns 16 -records 500

# Training-throughput smoke: batched vs reference gradient engine at the
# paper's 2x256 model scale (proves the bitwise equivalence untimed, then
# reports windows/s for both engines).
bench-train:
	$(GO) test -run=NONE -bench=BenchmarkTrainThroughput -benchtime=2x .
